package card

import (
	"math"
	"sort"

	"coral/internal/analysis/flow"
	"coral/internal/ast"
	"coral/internal/rewrite"
	"coral/internal/term"
)

// Analyze runs the full analysis over a module: norm classification per
// rule, growth findings refined per reachable adornment (flow.Reach from
// every exported query form), and the cardinality fixpoint.
func Analyze(m *ast.Module, opts Options) *Result {
	res := analyzeRules(m.Rules, opts)
	res.Module = m.Name
	refineByAdornment(m, res, opts)
	res.computeVerdicts()
	return res
}

// EstimateRules runs the cardinality side alone over an arbitrary rule set
// — the engine calls it on rewritten programs, where magic and
// supplementary predicates are ordinary rules and the estimates price the
// program that actually runs. Findings are computed (growth marks domains
// unbounded) but not adornment-refined.
func EstimateRules(rules []*ast.Rule, opts Options) *Result {
	res := analyzeRules(rules, opts)
	res.computeVerdicts()
	return res
}

func analyzeRules(rules []*ast.Rule, opts Options) *Result {
	g := rewrite.BuildDepGraph(rules)
	e := &estimator{
		g:     g,
		base:  opts.BaseRows,
		norms: make(map[*ast.Rule]*ruleNorm, len(rules)),
		rulesFor: func() map[ast.PredKey][]*ast.Rule {
			out := make(map[ast.PredKey][]*ast.Rule)
			for _, r := range rules {
				out[r.Head.Key()] = append(out[r.Head.Key()], r)
			}
			return out
		}(),
		aggPos: aggPositions(rules),
		est: &Estimates{
			Dom:   make(map[ast.PredKey][]float64),
			Bound: make(map[ast.PredKey]float64),
			Rows:  make(map[ast.PredKey]float64),
			Exact: make(map[ast.PredKey]bool),
		},
	}
	res := &Result{Graph: g, Est: e.est, Verdicts: make(map[ast.PredKey]Verdict)}
	for _, scc := range g.SCCs {
		inSCC := make(map[ast.PredKey]bool, len(scc.Preds))
		for _, p := range scc.Preds {
			inSCC[p] = true
		}
		rec := func(k ast.PredKey) bool { return scc.Recursive && inSCC[k] }
		for _, p := range scc.Preds {
			for _, r := range e.rulesFor[p] {
				n := normRule(r, rec)
				e.norms[r] = n
				fs := n.findings(e.aggPos[p])
				if opts.AggSelected[p.Name] || len(r.Aggs) > 0 {
					// An aggregate selection prunes dominated facts every
					// round (paper §5.5.2): the growth is bounded by the
					// selection, exactly like a comparison guard.
					for i := range fs {
						fs[i].Guarded = true
					}
				}
				res.Findings = append(res.Findings, fs...)
			}
		}
		e.solveSCC(scc)
		preds := append([]ast.PredKey(nil), scc.Preds...)
		sort.Slice(preds, func(i, j int) bool {
			if preds[i].Name != preds[j].Name {
				return preds[i].Name < preds[j].Name
			}
			return preds[i].Arity < preds[j].Arity
		})
		res.Order = append(res.Order, preds...)
	}
	sortFindings(res.Findings)
	res.IterBound = 1
	for _, scc := range g.SCCs {
		if !scc.Recursive {
			continue
		}
		res.IterBound += e.est.RoundBound(scc.Preds)
	}
	if res.IterBound > maxF {
		res.IterBound = math.Inf(1)
	}
	return res
}

// sortFindings orders findings by source position for stable output.
func sortFindings(fs []Growth) {
	sort.SliceStable(fs, func(i, j int) bool {
		if fs[i].Rule.Line != fs[j].Rule.Line {
			return fs[i].Rule.Line < fs[j].Rule.Line
		}
		if fs[i].Rule.Col != fs[j].Rule.Col {
			return fs[i].Rule.Col < fs[j].Rule.Col
		}
		return fs[i].HeadPos < fs[j].HeadPos
	})
}

// aggPositions maps each head predicate to its aggregated positions.
func aggPositions(rules []*ast.Rule) map[ast.PredKey]map[int]bool {
	out := make(map[ast.PredKey]map[int]bool)
	for _, r := range rules {
		for _, ag := range r.Aggs {
			k := r.Head.Key()
			if out[k] == nil {
				out[k] = make(map[int]bool)
			}
			out[k][ag.Pos] = true
		}
	}
	return out
}

// estimator runs the cardinality fixpoint: SCCs bottom-up; inside each
// component, value domains solve a copy-propagation system (entries are
// values generated outside the cycle, copies move them around it) whose
// closure is computed directly on the small position graph. The maxF cap
// is the widening: any bound past it is unbounded.
type estimator struct {
	g        *rewrite.DepGraph
	base     BaseOracle
	norms    map[*ast.Rule]*ruleNorm
	rulesFor map[ast.PredKey][]*ast.Rule
	aggPos   map[ast.PredKey]map[int]bool
	est      *Estimates
}

// node is one argument position of an in-SCC predicate.
type node struct {
	key ast.PredKey
	pos int
}

func (e *estimator) solveSCC(scc rewrite.SCC) {
	inSCC := make(map[ast.PredKey]bool, len(scc.Preds))
	for _, p := range scc.Preds {
		inSCC[p] = true
	}
	entry := make(map[node]float64)
	copyFrom := make(map[node][]node) // target -> sources feeding it by copy
	for _, p := range scc.Preds {
		for _, r := range e.rulesFor[p] {
			n := e.norms[r]
			for i, t := range r.Head.Args {
				tgt := node{p, i}
				add, srcs := e.headContribution(n, t, inSCC, scc.Recursive)
				entry[tgt] += add
				copyFrom[tgt] = append(copyFrom[tgt], srcs...)
			}
		}
	}
	// Close over copies: a position's domain is bounded by the sum of all
	// entries that can reach it through the copy graph (its own included).
	for _, p := range scc.Preds {
		doms := make([]float64, p.Arity)
		for i := range doms {
			doms[i] = e.closeDomain(node{p, i}, entry, copyFrom)
		}
		e.est.Dom[p] = doms
		bound := 1.0
		for i, d := range doms {
			if e.aggPos[p][i] {
				continue // one fact per group: the position adds no factor
			}
			bound *= d
		}
		if bound > maxF || math.IsInf(bound, 1) {
			bound = math.Inf(1)
		}
		e.est.Bound[p] = bound
	}
	// Row estimates: join-shaped for non-recursive predicates, the domain
	// bound for recursive ones (their own rows feed their own joins).
	for _, p := range scc.Preds {
		if scc.Recursive {
			e.est.Rows[p] = e.est.Bound[p]
			continue
		}
		rows, exact := e.predRows(p)
		if b := e.est.Bound[p]; rows > b {
			rows = b
		}
		e.est.Rows[p] = rows
		e.est.Exact[p] = exact
	}
}

// closeDomain sums the entries of every node that reaches tgt through
// copy edges, tgt included.
func (e *estimator) closeDomain(tgt node, entry map[node]float64, copyFrom map[node][]node) float64 {
	seen := map[node]bool{}
	var visit func(nd node) float64
	visit = func(nd node) float64 {
		if seen[nd] {
			return 0
		}
		seen[nd] = true
		total := entry[nd]
		for _, src := range copyFrom[nd] {
			total += visit(src)
		}
		return total
	}
	d := visit(tgt)
	if d > maxF {
		return math.Inf(1)
	}
	if d == 0 {
		d = 1 // a position that exists holds at least one value shape
	}
	return d
}

// headContribution computes one head argument's domain contribution under
// one rule: new values entering the cycle (entry) plus copy edges from
// in-SCC positions.
func (e *estimator) headContribution(n *ruleNorm, t term.Term, inSCC map[ast.PredKey]bool, recursive bool) (float64, []node) {
	switch x := t.(type) {
	case *term.Var:
		c := n.class[x]
		if c == nil || c.kind == classUnknown {
			return 1, nil // stored as a universally quantified variable
		}
		switch c.kind {
		case classFinite:
			return e.varDom(n, x, inSCC, 0), nil
		case classRec:
			for _, s := range c.srcs {
				if inSCC[s.key] {
					// One source suffices for an upper bound; joins over
					// several only shrink the domain. Deconstructed
					// subterms stay within the source's subterm universe —
					// approximate it by the source domain itself (sound for
					// copies; subterms of a finite set are finite).
					if s.sub {
						return math.Inf(1), nil
					}
					return 0, []node{{s.key, s.pos}}
				}
			}
			return math.Inf(1), nil
		default: // classArith, classFunctor: values generated on the cycle
			return math.Inf(1), nil
		}
	case *term.Functor:
		prod := 1.0
		for _, v := range termVars(x) {
			c := n.class[v]
			if c != nil && c.kind >= classRec && recursive {
				return math.Inf(1), nil // construction over the cycle
			}
			prod *= e.varDom(n, v, inSCC, 0)
			if prod > maxF {
				return math.Inf(1), nil
			}
		}
		return prod, nil
	default:
		return 1, nil // a constant
	}
}

// varDom bounds a finite variable's value domain: the tightest of its
// binding sources, or the product of its generation inputs.
func (e *estimator) varDom(n *ruleNorm, v *term.Var, inSCC map[ast.PredKey]bool, depth int) float64 {
	c := n.class[v]
	if c == nil || depth > 8 {
		return math.Inf(1)
	}
	if c.constant {
		return 1
	}
	best := math.Inf(1)
	if c.gen != nil {
		prod := 1.0
		for _, in := range c.gen.inputs {
			prod *= e.varDom(n, in, inSCC, depth+1)
			if prod > maxF {
				prod = math.Inf(1)
				break
			}
		}
		if prod < best {
			best = prod
		}
	}
	for _, s := range c.srcs {
		if inSCC[s.key] {
			continue // in-SCC sources are handled by the copy closure
		}
		if d := e.srcDom(s); d < best {
			best = d
		}
	}
	return best
}

// srcDom bounds the values flowing out of one binding source position.
func (e *estimator) srcDom(s srcRef) float64 {
	if doms, ok := e.est.Dom[s.key]; ok {
		if s.pos < len(doms) {
			return doms[s.pos]
		}
		return math.Inf(1)
	}
	if e.g.Defined[s.key] {
		return math.Inf(1) // same-SCC (handled elsewhere) or not yet solved
	}
	if e.base != nil {
		if rows, distinct, ok := e.base(ast.PredKey{Name: s.key.Name, Arity: s.key.Arity}); ok {
			if s.pos < len(distinct) && distinct[s.pos] > 0 {
				return float64(distinct[s.pos])
			}
			if rows >= 0 {
				return math.Max(1, float64(rows))
			}
		}
	}
	return math.Inf(1)
}

// predRows estimates a non-recursive predicate's rows as the sum of its
// rules' join estimates. exact is true only for counts propagated
// unchanged from exact base statistics (facts, or a pass-through rule).
func (e *estimator) predRows(p ast.PredKey) (float64, bool) {
	rules := e.rulesFor[p]
	total := 0.0
	exact := len(rules) > 0
	factsOnly := true
	for _, r := range rules {
		if !r.IsFact() {
			factsOnly = false
			break
		}
	}
	if factsOnly {
		return float64(len(rules)), false // duplicates may collapse
	}
	for _, r := range rules {
		if r.IsFact() {
			total++
			exact = false
			continue
		}
		rows, ex := e.ruleRows(r)
		total += rows
		if !ex || len(rules) > 1 {
			exact = false
		}
		if total > maxF {
			return math.Inf(1), false
		}
	}
	return total, exact
}

// ruleRows is the join-shaped row estimate of one rule body: scan rows of
// each positive relation literal, divided by the distinct counts of
// already-bound positions — the static twin of the planner's estCost.
func (e *estimator) ruleRows(r *ast.Rule) (float64, bool) {
	if passthrough(r) {
		src := r.Body[0].Key()
		rows, known := e.rowsOf(src)
		if known {
			return rows, e.exactOf(src)
		}
	}
	est := 1.0
	bound := map[*term.Var]bool{}
	for i := range r.Body {
		l := &r.Body[i]
		if l.Builtin() || l.Neg {
			continue
		}
		rows, known := e.rowsOf(l.Key())
		if !known {
			rows = defaultRows
		}
		sel := 1.0
		for j, arg := range l.Args {
			if termCovered(arg, bound) {
				sel *= e.distinctOf(l.Key(), j)
			}
		}
		if v := rows / sel; v > 1 {
			est *= v
		}
		if est > maxF {
			return math.Inf(1), false
		}
		walkVars2(l.Args, func(v *term.Var) { bound[v] = true })
	}
	return est, false
}

// passthrough recognizes p(X1..Xn) :- q(X1..Xn): head and single body
// literal share the identical argument tuple, so rows carry over exactly.
func passthrough(r *ast.Rule) bool {
	if len(r.Body) != 1 || len(r.Aggs) != 0 || r.Body[0].Neg || r.Body[0].Builtin() {
		return false
	}
	b := &r.Body[0]
	if len(b.Args) != len(r.Head.Args) {
		return false
	}
	seen := map[*term.Var]bool{}
	for i, a := range r.Head.Args {
		v, ok := a.(*term.Var)
		bv, ok2 := b.Args[i].(*term.Var)
		if !ok || !ok2 || v != bv || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

func (e *estimator) rowsOf(k ast.PredKey) (float64, bool) {
	if rows, ok := e.est.Rows[k]; ok {
		return rows, !math.IsInf(rows, 1)
	}
	if e.g.Defined[k] {
		return math.Inf(1), false // same SCC: caller substitutes defaults
	}
	if e.base != nil {
		if rows, _, ok := e.base(k); ok && rows >= 0 {
			return float64(rows), true
		}
	}
	return math.Inf(1), false
}

func (e *estimator) exactOf(k ast.PredKey) bool {
	if e.g.Defined[k] {
		return e.est.Exact[k]
	}
	if e.base != nil {
		_, _, ok := e.base(k)
		return ok
	}
	return false
}

func (e *estimator) distinctOf(k ast.PredKey, pos int) float64 {
	if doms, ok := e.est.Dom[k]; ok && pos < len(doms) && !math.IsInf(doms[pos], 1) {
		return doms[pos]
	}
	if !e.g.Defined[k] && e.base != nil {
		if _, distinct, ok := e.base(k); ok && pos < len(distinct) && distinct[pos] > 0 {
			return float64(distinct[pos])
		}
	}
	return defaultDistinct
}

// termCovered reports whether a term is ground or all its variables are
// already bound (the position acts as a join key, not a scan output).
func termCovered(t term.Term, bound map[*term.Var]bool) bool {
	ok := true
	walkVars(t, func(v *term.Var) {
		if !bound[v] {
			ok = false
		}
	})
	return ok
}

func walkVars2(args []term.Term, f func(*term.Var)) {
	for _, a := range args {
		walkVars(a, f)
	}
}

// refineByAdornment deactivates growth findings that every reachable
// adornment demand-bounds: the feeding recursive call runs with a bound
// argument that is a strict subterm of a bound head argument, so the
// magic-set subgoal tree descends a well-founded norm. Findings in rules
// no exported form reaches are also deactivated (the flow checks already
// report unreachable rules).
func refineByAdornment(m *ast.Module, res *Result, opts Options) {
	if len(m.Exports) == 0 || len(res.Findings) == 0 {
		return
	}
	type ruleCtx struct {
		headAdorn string
		rf        flow.RuleFlow
	}
	byRule := make(map[*ast.Rule][]ruleCtx)
	rooted := false
	for _, ex := range m.Exports {
		key := ast.PredKey{Name: ex.Pred, Arity: ex.Arity}
		forms := ex.Forms
		if len(forms) == 0 {
			forms = []string{flow.AllFree(ex.Arity)}
		}
		for _, form := range forms {
			rb, err := flow.Reach(m.Rules, key, form, flow.ReachOpts{NegFree: opts.NegFree})
			if err != nil {
				continue // undefined export: another check reports it
			}
			rooted = true
			for _, ctx := range rb.Order {
				for _, rf := range rb.Rules[ctx] {
					byRule[rf.Rule] = append(byRule[rf.Rule], ruleCtx{ctx.Adorn, rf})
				}
			}
		}
	}
	if !rooted {
		return
	}
	for i := range res.Findings {
		g := &res.Findings[i]
		ctxs := byRule[g.Rule]
		if len(ctxs) == 0 {
			g.Active = false // unreachable rule
			continue
		}
		g.Active = false
		for _, rc := range ctxs {
			if !demandBounded(g, rc.headAdorn, rc.rf) {
				g.Active = true
				g.Witness = rc.headAdorn
				break
			}
		}
	}
}

// demandBounded reports whether, under one head adornment, the growth's
// feeding recursive call descends: some bound call argument is a strict
// subterm of a bound head argument, so each subgoal is structurally
// smaller than its parent and the subgoal tree is finite.
func demandBounded(g *Growth, headAdorn string, rf flow.RuleFlow) bool {
	if g.FeedIdx < 0 || g.FeedIdx >= len(rf.Body) {
		return false
	}
	call := rf.Calls[g.FeedIdx]
	if call.Pred.Name == "" {
		return false
	}
	lit := &rf.Body[g.FeedIdx]
	for j := 0; j < len(lit.Args) && j < len(call.Adorn); j++ {
		if call.Adorn[j] != 'b' {
			continue
		}
		for hi, harg := range rf.Rule.Head.Args {
			if hi < len(headAdorn) && headAdorn[hi] == 'b' && strictSubterm(lit.Args[j], harg) {
				return true
			}
		}
	}
	return false
}

// computeVerdicts folds findings into per-predicate summaries: predicates
// of an SCC share a verdict, since any member's growth grows the whole
// component's fixpoint.
func (r *Result) computeVerdicts() {
	for _, p := range r.Order {
		r.Verdicts[p] = VerdictTerminates
	}
	worst := make(map[int]Verdict)
	for _, g := range r.Findings {
		comp, ok := r.Graph.CompOf[g.Pred]
		if !ok {
			continue
		}
		v := VerdictGuarded
		if g.Active && !g.Guarded {
			v = VerdictMayDiverge
		} else if !g.Active && !g.Guarded {
			// Demand-bounded under every reachable adornment: the magic
			// subgoal tree is finite, but the value space is still open.
			v = VerdictGuarded
		}
		if v > worst[comp] {
			worst[comp] = v
		}
	}
	for _, p := range r.Order {
		if comp, ok := r.Graph.CompOf[p]; ok {
			if v, ok := worst[comp]; ok && v > r.Verdicts[p] {
				r.Verdicts[p] = v
			}
		}
	}
}
