package card

import (
	"fmt"

	"coral/internal/ast"
	"coral/internal/term"
)

// The norm analysis classifies, per rule, how each variable's values are
// produced. The norm of a value is its term size; a recursion is safe when
// every head position either copies values already stored somewhere in the
// SCC (norm preserved) or draws them from a finite domain outside the SCC
// (norm irrelevant). Arithmetic and functor construction over recursive
// values strictly increase the norm along the cycle — those are the only
// two ways a Datalog-with-functions fixpoint can generate infinitely many
// facts, and they become Growth findings.

// classKind orders variable classifications. Positive base/lower-stratum
// literals restrict a domain, so classFinite wins over classRec on joins.
type classKind uint8

const (
	classUnknown classKind = iota // never bound: a single non-ground value
	classFinite                   // bound by a finite-domain source
	classRec                      // copied from same-SCC stored values
	classArith                    // arithmetic over recursive values
	classFunctor                  // functor construction over recursive values
)

// srcRef locates a binding of a variable: body literal idx, predicate and
// argument position. sub marks a binding through deconstruction — the
// variable holds a strict subterm of the source value.
type srcRef struct {
	key ast.PredKey
	pos int
	idx int
	sub bool
}

// genInfo records a value-generating builtin: the operator, whether it is
// functor construction, and its input variables.
type genInfo struct {
	op      string
	functor bool
	inputs  []*term.Var
	lit     *ast.Literal
}

type varClass struct {
	kind     classKind
	srcs     []srcRef
	gen      *genInfo
	constant bool // assigned a ground constant: domain 1
	guarded  bool // a comparison against a finite value bounds it
}

// ruleNorm is the per-rule classification of every body/head variable.
type ruleNorm struct {
	rule  *ast.Rule
	class map[*term.Var]*varClass
}

func (n *ruleNorm) classOf(v *term.Var) *varClass {
	c := n.class[v]
	if c == nil {
		c = &varClass{}
		n.class[v] = c
	}
	return c
}

// normRule classifies one rule's variables. rec reports whether a body
// predicate belongs to the head's SCC. Builtins may depend on variables
// bound later in the written order, so the scan iterates to a fixpoint.
func normRule(r *ast.Rule, rec func(ast.PredKey) bool) *ruleNorm {
	n := &ruleNorm{rule: r, class: map[*term.Var]*varClass{}}
	for pass := 0; pass <= len(r.Body)+1; pass++ {
		changed := false
		for idx := range r.Body {
			l := &r.Body[idx]
			if l.Neg {
				continue // negation binds nothing
			}
			if l.Builtin() {
				if n.builtin(l, idx) {
					changed = true
				}
				continue
			}
			isRec := rec(l.Key())
			for j, arg := range l.Args {
				walkVars(arg, func(v *term.Var) {
					c := n.classOf(v)
					_, isVar := arg.(*term.Var)
					ref := srcRef{key: l.Key(), pos: j, idx: idx, sub: !isVar}
					if isRec {
						if c.kind == classUnknown {
							c.kind = classRec
							c.srcs = append(c.srcs, ref)
							changed = true
						}
					} else if c.kind != classFinite {
						// A positive finite-domain literal restricts the
						// variable to its column even if a recursive literal
						// bound it first (join = intersection).
						c.kind = classFinite
						c.gen = nil
						c.srcs = append(c.srcs, ref)
						changed = true
					} else if !n.hasSrc(c, ref) {
						c.srcs = append(c.srcs, ref)
						changed = true
					}
				})
			}
		}
		if !changed {
			break
		}
	}
	n.markGuards(r)
	return n
}

func (n *ruleNorm) hasSrc(c *varClass, ref srcRef) bool {
	for _, s := range c.srcs {
		if s == ref {
			return true
		}
	}
	return false
}

// builtin interprets "=" and "is": the side whose variables are already
// classified is the input, the other side receives. Comparisons classify
// nothing (they guard; see markGuards).
func (n *ruleNorm) builtin(l *ast.Literal, idx int) bool {
	if len(l.Args) != 2 {
		return false
	}
	switch l.Pred {
	case "is":
		if !n.allClassified(l.Args[1]) {
			return false // inputs bind later in the written order; retry
		}
		return n.assign(l, l.Args[0], l.Args[1])
	case "=":
		left, right := l.Args[0], l.Args[1]
		lc, rc := n.allClassified(left), n.allClassified(right)
		switch {
		case lc && rc:
			return false // a test, not a binding
		case lc:
			return n.assign(l, right, left)
		case rc:
			return n.assign(l, left, right)
		}
	}
	return false
}

// allClassified reports whether every variable of t has been classified
// (constant-only terms trivially qualify).
func (n *ruleNorm) allClassified(t term.Term) bool {
	ok := true
	walkVars(t, func(v *term.Var) {
		if c := n.class[v]; c == nil || c.kind == classUnknown {
			ok = false
		}
	})
	return ok
}

// assign propagates classification from the in side of a binding builtin
// to the out side. Reports whether anything changed.
func (n *ruleNorm) assign(l *ast.Literal, out, in term.Term) bool {
	switch o := out.(type) {
	case *term.Var:
		c := n.classOf(o)
		if c.kind != classUnknown {
			return false // already classified: the builtin only tests
		}
		return n.assignVar(l, c, in)
	case *term.Functor:
		// Structure on the receiving side: either a pairwise decomposition
		// (f(..) = f(..)) or a deconstruction of a classified variable's
		// value into the structure's variables.
		if f, ok := in.(*term.Functor); ok && f.Sym == o.Sym && len(f.Args) == len(o.Args) {
			changed := false
			for i := range o.Args {
				if n.assign(l, o.Args[i], f.Args[i]) {
					changed = true
				}
			}
			return changed
		}
		if v, ok := in.(*term.Var); ok {
			src := n.class[v]
			if src == nil || src.kind == classUnknown {
				return false
			}
			changed := false
			walkVars(out, func(w *term.Var) {
				c := n.classOf(w)
				if c.kind != classUnknown {
					return
				}
				// w holds a strict subterm of v's value: same domain bound,
				// norm strictly smaller.
				c.kind = src.kind
				c.guarded = src.guarded
				for _, s := range src.srcs {
					s.sub = true
					c.srcs = append(c.srcs, s)
				}
				changed = true
			})
			return changed
		}
	}
	return false
}

// assignVar classifies a single receiving variable from the input term.
func (n *ruleNorm) assignVar(l *ast.Literal, c *varClass, in term.Term) bool {
	switch x := in.(type) {
	case *term.Var:
		src := n.class[x]
		if src == nil || src.kind == classUnknown {
			return false
		}
		*c = *src // plain alias: copy the classification
		return true
	case *term.Functor:
		inputs := termVars(in)
		fromRec := false
		for _, v := range inputs {
			if s := n.class[v]; s != nil && s.kind >= classRec {
				fromRec = true
			}
		}
		gen := &genInfo{op: x.Sym, functor: !isArithTerm(x), inputs: inputs, lit: l}
		c.gen = gen
		switch {
		case !fromRec:
			c.kind = classFinite // computed from finite inputs: finite domain
		case gen.functor:
			c.kind = classFunctor
		default:
			c.kind = classArith
		}
		return true
	default:
		c.kind = classFinite
		c.constant = true
		return true
	}
}

// arithOps mirrors the evaluator's interpreted function symbols.
var arithOps = map[string]bool{
	"+": true, "-": true, "*": true, "/": true, "mod": true, "abs": true,
}

// isArithTerm reports whether every functor from the root down to the
// variables is an interpreted arithmetic operator — the term is computed,
// not constructed.
func isArithTerm(t term.Term) bool {
	f, ok := t.(*term.Functor)
	if !ok {
		return true
	}
	if !arithOps[f.Sym] || len(f.Args) < 1 || len(f.Args) > 2 {
		return false
	}
	for _, a := range f.Args {
		if !isArithTerm(a) {
			return false
		}
	}
	return true
}

// guardOps are the comparisons that bound a variable's range when the
// other side is finite. "!=" excludes a single value and bounds nothing.
var guardOps = map[string]bool{"<": true, ">": true, ">=": true, "=<": true, "==": true}

// markGuards records range guards: a positive comparison between a
// variable and a term whose variables are all finite bounds the variable,
// which is what turns counting recursion into bounded counting recursion.
func (n *ruleNorm) markGuards(r *ast.Rule) {
	for i := range r.Body {
		l := &r.Body[i]
		if l.Neg || !guardOps[l.Pred] || len(l.Args) != 2 {
			continue
		}
		n.guardSide(l.Args[0], l.Args[1])
		n.guardSide(l.Args[1], l.Args[0])
	}
}

func (n *ruleNorm) guardSide(x, other term.Term) {
	v, ok := x.(*term.Var)
	if !ok {
		return
	}
	finite := true
	walkVars(other, func(w *term.Var) {
		if c := n.class[w]; c == nil || c.kind != classFinite {
			finite = false
		}
	})
	if !finite {
		return
	}
	if c := n.class[v]; c != nil {
		c.guarded = true
	}
}

// guardedChain reports whether v or any generation input feeding it is
// guarded (a bounded input bounds the computed value's range too).
func (n *ruleNorm) guardedChain(v *term.Var, depth int) bool {
	c := n.class[v]
	if c == nil || depth > 8 {
		return false
	}
	if c.guarded {
		return true
	}
	if c.gen != nil {
		for _, in := range c.gen.inputs {
			if n.guardedChain(in, depth+1) {
				return true
			}
		}
	}
	return false
}

// feedSrc traces a generated variable back to the recursive binding that
// feeds it: the body index and argument position of the first same-SCC
// source reached through generation inputs and copies.
func (n *ruleNorm) feedSrc(v *term.Var, depth int) (srcRef, bool) {
	c := n.class[v]
	if c == nil || depth > 8 {
		return srcRef{}, false
	}
	if c.kind == classRec {
		for _, s := range c.srcs {
			return s, true
		}
	}
	if c.gen != nil {
		for _, in := range c.gen.inputs {
			if s, ok := n.feedSrc(in, depth+1); ok {
				return s, ok
			}
		}
	}
	// A copied classification keeps the original srcs.
	for _, s := range c.srcs {
		return s, true
	}
	return srcRef{}, false
}

// findings extracts the value-generating sites of one rule: head positions
// whose values are arithmetic or functor products of recursive values.
// aggPos excludes aggregated positions (one fact per group regardless).
func (n *ruleNorm) findings(aggPos map[int]bool) []Growth {
	r := n.rule
	var out []Growth
	for i, t := range r.Head.Args {
		if aggPos[i] {
			continue
		}
		switch x := t.(type) {
		case *term.Var:
			c := n.class[x]
			if c == nil || c.kind < classArith || c.gen == nil {
				continue
			}
			kind := GrowArith
			if c.kind == classFunctor {
				kind = GrowFunctor
			}
			g := Growth{
				Rule: r, Pred: r.Head.Key(), HeadPos: i, Kind: kind,
				Via:     renderGen(x, c.gen),
				Guarded: n.guardedChain(x, 0),
				Active:  true,
			}
			if s, ok := n.feedSrc(x, 0); ok {
				g.FeedIdx, g.FeedPos = s.idx, s.pos
			} else {
				g.FeedIdx = -1
			}
			out = append(out, g)
		case *term.Functor:
			// Head-level construction over a recursion-tainted variable:
			// p(f(X)) :- p(X). The per-rule functor-growth check reports
			// the direct form; the finding still feeds the domain analysis
			// and the adornment refinement.
			var tainted *term.Var
			guarded := true
			walkVars(x, func(v *term.Var) {
				if c := n.class[v]; c != nil && c.kind >= classRec {
					if tainted == nil {
						tainted = v
					}
					if !n.guardedChain(v, 0) {
						guarded = false
					}
				}
			})
			if tainted == nil {
				continue
			}
			g := Growth{
				Rule: r, Pred: r.Head.Key(), HeadPos: i, Kind: GrowFunctor,
				Via:     fmt.Sprintf("%s wraps %s", x.Sym, tainted.Name),
				Direct:  true,
				Guarded: guarded,
				Active:  true,
			}
			if s, ok := n.feedSrc(tainted, 0); ok {
				g.FeedIdx, g.FeedPos = s.idx, s.pos
			} else {
				g.FeedIdx = -1
			}
			out = append(out, g)
		}
	}
	return out
}

// renderGen renders a generating site for diagnostics: "X = Y + 1".
func renderGen(v *term.Var, g *genInfo) string {
	rhs := "?"
	if g.lit != nil && len(g.lit.Args) == 2 {
		if term.Equal(g.lit.Args[0], v) {
			rhs = g.lit.Args[1].String()
		} else {
			rhs = g.lit.Args[0].String()
		}
		op := "="
		if g.lit.Pred == "is" {
			op = "is"
		}
		return fmt.Sprintf("%s %s %s", v.Name, op, rhs)
	}
	return fmt.Sprintf("%s = %s(...)", v.Name, g.op)
}
