package card

import (
	"fmt"
	"math"
	"strings"
)

// Report renders the analysis for coralc -analyze and the REPL's :analyze,
// printed alongside the flow report: per derived predicate (bottom-up),
// the row estimate and bound, the per-position value domains, and the
// termination verdict; then the module's fixpoint-round bound and the
// value-generating sites.
func (r *Result) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%% cardinality & termination: module %s\n", r.Module)
	if len(r.Order) == 0 {
		b.WriteString("  (no derived predicates)\n")
		return b.String()
	}
	for _, p := range r.Order {
		fmt.Fprintf(&b, "%s:\n", p)
		rows := r.Est.Rows[p]
		bound := r.Est.Bound[p]
		line := "  rows " + fmtEst(rows, r.Est.Exact[p])
		if !math.IsInf(bound, 1) && bound != rows {
			line += fmt.Sprintf(", bound \u2264 %s", fmtF(bound))
		}
		doms := r.Est.Dom[p]
		if len(doms) > 0 {
			parts := make([]string, len(doms))
			for i, d := range doms {
				parts[i] = fmtF(d)
			}
			line += ", domains (" + strings.Join(parts, ", ") + ")"
		}
		b.WriteString(line + "\n")
		fmt.Fprintf(&b, "  termination: %s\n", r.Verdicts[p])
	}
	if math.IsInf(r.IterBound, 1) {
		b.WriteString("fixpoint rounds: unbounded\n")
	} else {
		fmt.Fprintf(&b, "fixpoint rounds: \u2264 %s\n", fmtF(r.IterBound))
	}
	for _, g := range r.Findings {
		state := "active"
		switch {
		case g.Guarded:
			state = "guarded"
		case !g.Active && g.Witness == "":
			state = "demand-bounded"
		case !g.Active:
			state = "inactive"
		}
		fmt.Fprintf(&b, "growth: %s argument %d by %s (%s, %s)\n",
			g.Pred, g.HeadPos+1, g.Kind, g.Via, state)
	}
	return b.String()
}

func fmtEst(v float64, exact bool) string {
	if math.IsInf(v, 1) {
		return "unknown"
	}
	if exact {
		return "= " + fmtF(v)
	}
	return "\u2248 " + fmtF(v)
}

func fmtF(v float64) string {
	if math.IsInf(v, 1) {
		return "\u221e"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.3g", v)
}
