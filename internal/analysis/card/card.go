// Package card implements compile-time cardinality and termination
// analysis: the static analogue of the engine's live relation statistics.
// A worklist fixpoint over the predicate dependency graph infers, per
// derived predicate, (a) value-domain and row-count bounds propagated from
// consulted base relations and rule structure, and (b) termination
// verdicts from a norm-based argument-size analysis that separates
// structural recursion over finite EDBs (always terminating, the Datalog
// guarantee) from value-generating recursion through arithmetic and
// functor construction (potentially diverging). Verdicts are refined per
// reachable adornment by reusing flow.Reach: a growth that only runs under
// bound call forms with a structurally descending argument is demand-
// bounded and not reported.
//
// Consumers: the vet checks in analysis/checks_card.go, the planner's
// cold-start seeding (engine/cardseed.go), and the budget iteration hints.
package card

import (
	"math"

	"coral/internal/ast"
	"coral/internal/rewrite"
	"coral/internal/term"
)

// maxF is the widening cap for domain and row bounds: any bound that
// climbs past it is treated as unbounded. It keeps products from
// overflowing and makes the in-SCC propagation trivially convergent.
const maxF = 1e15

// defaultRows prices a body source with no static information, mirroring
// the planner's pessimism about unknown relations (engine unknownRows).
const defaultRows = float64(1 << 20)

// defaultDistinct estimates the distinct values of a position with no
// sketch or domain information (the planner uses the same prior).
const defaultDistinct = 10.0

// BaseOracle resolves live statistics for a base (non-derived) predicate:
// total rows and per-position distinct counts. distinct may be nil or
// shorter than the arity; ok is false when nothing is known.
type BaseOracle func(key ast.PredKey) (rows int, distinct []int, ok bool)

// Options tunes the analysis.
type Options struct {
	// BaseRows resolves consulted base relation statistics; nil means no
	// exact counts are available and only structural bounds are computed.
	BaseRows BaseOracle
	// NegFree mirrors the rewriter's treatment of negated calls during the
	// reachability traversal (true for stratified evaluation).
	NegFree bool
	// AggSelected names predicates under an @aggregate_selection
	// annotation: the selection prunes dominated facts each round, which is
	// exactly how the paper bounds shortest-path on cyclic graphs (§5.5.2)
	// — growth in such rules is treated as guarded.
	AggSelected map[string]bool
}

// GrowthKind classifies how a recursive rule generates values that are not
// copies of already-stored ones.
type GrowthKind uint8

const (
	// GrowArith marks arithmetic value generation (X = Y+1, X is Y*2).
	GrowArith GrowthKind = iota
	// GrowFunctor marks functor construction over a recursive value.
	GrowFunctor
)

func (k GrowthKind) String() string {
	if k == GrowArith {
		return "arithmetic"
	}
	return "functor construction"
}

// Growth is one value-generating site: a head position of a recursive rule
// whose values are computed from, rather than copied from, the stored
// values of its own SCC. The norm argument at that position strictly grows
// along the cycle, so the fixpoint may not terminate.
type Growth struct {
	Rule    *ast.Rule
	Pred    ast.PredKey
	HeadPos int        // head argument position (0-based)
	Kind    GrowthKind // arithmetic vs functor construction
	Via     string     // rendering of the generating site, for messages
	// Direct marks head-level functor construction (p(f(X)) :- p(X)),
	// which the per-rule functor-growth check already reports.
	Direct bool
	// Guarded is true when a comparison against a finite value bounds the
	// generated variable (or a generation input), making the recursion
	// terminate even though values are being created.
	Guarded bool
	// FeedIdx/FeedPos locate the same-SCC body literal whose stored values
	// feed the generation (for the structural-descent refinement).
	FeedIdx int
	FeedPos int
	// Active is false when every reachable adornment of the rule drives
	// the feeding recursive call with a structurally descending bound
	// argument (demand-bounded top-down recursion), or when no exported
	// query form reaches the rule at all.
	Active bool
	// Witness is a reachable head adornment under which the growth is not
	// demand-bounded ("" when the module has no exports).
	Witness string
}

// Verdict is the per-predicate termination/boundedness summary.
type Verdict uint8

const (
	// VerdictTerminates: every value stored by the predicate's SCC is
	// copied from a finite domain — the fixpoint is provably finite.
	VerdictTerminates Verdict = iota
	// VerdictGuarded: values are generated but every generation is bounded
	// by a comparison guard; the fixpoint terminates but its size is not
	// statically bounded.
	VerdictGuarded
	// VerdictMayDiverge: an unguarded value-generating recursion is
	// reachable; the fixpoint may be infinite.
	VerdictMayDiverge
)

func (v Verdict) String() string {
	switch v {
	case VerdictTerminates:
		return "terminates"
	case VerdictGuarded:
		return "terminates (guarded value generation; size unbounded)"
	}
	return "may diverge"
}

// Estimates holds the cardinality side of the analysis.
type Estimates struct {
	// Dom bounds the distinct values each argument position can hold
	// (math.Inf(1) when unbounded or unknown).
	Dom map[ast.PredKey][]float64
	// Bound is the row-count bound: the product of position domains
	// (aggregated positions contribute factor 1 — one fact per group).
	Bound map[ast.PredKey]float64
	// Rows is the estimated row count, at most Bound; join-shaped
	// estimates for non-recursive predicates, the domain bound for
	// recursive ones.
	Rows map[ast.PredKey]float64
	// Exact marks rows propagated unchanged from exact base counts.
	Exact map[ast.PredKey]bool
}

// RoundBound returns an upper bound on the semi-naive iterations a
// stratum over preds can run: every round but the last derives at least
// one new fact, so rounds ≤ total distinct facts + 1. Infinite when any
// member's row bound is unknown.
func (e *Estimates) RoundBound(preds []ast.PredKey) float64 {
	total := 1.0 // the closing round that derives nothing
	for _, p := range preds {
		b, ok := e.Bound[p]
		if !ok {
			return math.Inf(1)
		}
		total += b
	}
	if total > maxF {
		return math.Inf(1)
	}
	return total
}

// Result is the full per-module analysis.
type Result struct {
	Module string
	Graph  *rewrite.DepGraph
	Est    *Estimates
	// Findings lists every value-generating site, including guarded and
	// demand-bounded ones (Active/Guarded distinguish them).
	Findings []Growth
	// Verdicts summarizes termination per derived predicate.
	Verdicts map[ast.PredKey]Verdict
	// IterBound bounds the total fixpoint rounds over all recursive SCCs
	// (math.Inf(1) when any recursive SCC is unbounded).
	IterBound float64
	// Order lists derived predicates bottom-up (SCC topological order,
	// name-sorted within a component) for deterministic reporting.
	Order []ast.PredKey
}

// walkVars visits every variable of a term.
func walkVars(t term.Term, f func(*term.Var)) {
	switch x := t.(type) {
	case *term.Var:
		f(x)
	case *term.Functor:
		for _, a := range x.Args {
			walkVars(a, f)
		}
	}
}

// termVars collects the distinct variables of a term in visit order.
func termVars(t term.Term) []*term.Var {
	var out []*term.Var
	seen := map[*term.Var]bool{}
	walkVars(t, func(v *term.Var) {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	})
	return out
}

// strictSubterm reports whether sub occurs strictly inside sup (at any
// depth below the root). Variables compare by identity, constants by
// term equality.
func strictSubterm(sub, sup term.Term) bool {
	f, ok := sup.(*term.Functor)
	if !ok {
		return false
	}
	for _, a := range f.Args {
		if term.Equal(sub, a) || strictSubterm(sub, a) {
			return true
		}
	}
	return false
}
