package analysis

import (
	"fmt"
	"math"
	"strings"

	"coral/internal/analysis/card"
	"coral/internal/ast"
	"coral/internal/term"
)

// Checks powered by the cardinality & termination analysis (analysis/card)
// plus the rule-redundancy pair (subsumption and alpha-equivalent
// duplicates) that rides on the same PR: where the flow checks ask "what
// binds", these ask "how much" and "does it stop".

// checkCard runs the card analysis and reports unguarded value-generating
// recursion: arithmetic counting loops and body-equation functor growth
// (the head-level form is functor-growth's). When the caller configured an
// iteration budget, the proven round bound also vets it.
func (a *analyzer) checkCard(m *ast.Module) {
	selected := make(map[string]bool, len(m.Ann.AggSels))
	for _, s := range m.Ann.AggSels {
		selected[s.Pred] = true
	}
	res := card.Analyze(m, card.Options{
		BaseRows:    a.opt.BaseRows,
		NegFree:     !m.Ann.OrderedSearch,
		AggSelected: selected,
	})
	for _, g := range res.Findings {
		if !g.Active || g.Guarded {
			continue
		}
		switch {
		case g.Kind == card.GrowArith:
			a.add(Diagnostic{
				Sev: Warning, Check: CheckArithRecursion, Module: m.Name,
				Line: g.Rule.Line, Col: g.Rule.Col,
				Message: fmt.Sprintf("recursive rule for %s computes unbounded new values at argument %d (%s)%s: the fixpoint may never close",
					g.Pred, g.HeadPos+1, g.Via, witnessForm(g)),
				Suggestion: "bound the generated value with a comparison guard, or draw it from a base relation",
			})
		case !g.Direct: // head-level construction is functor-growth's report
			a.add(Diagnostic{
				Sev: Warning, Check: CheckPossibleNontermination, Module: m.Name,
				Line: g.Rule.Line, Col: g.Rule.Col,
				Message: fmt.Sprintf("recursive rule for %s builds ever-larger terms at argument %d (%s)%s: bottom-up evaluation may not terminate",
					g.Pred, g.HeadPos+1, g.Via, witnessForm(g)),
				Suggestion: "recurse on subterms instead of constructing, or export only bound query forms that descend the structure",
			})
		}
	}
	a.checkIterBudget(m, res)
}

func witnessForm(g card.Growth) string {
	if g.Witness == "" {
		return ""
	}
	return fmt.Sprintf(" under query form %s", g.Witness)
}

// checkIterBudget compares a configured iteration budget against the
// static round bound. A budget below the number of recursive components is
// provably insufficient — every recursive stratum consumes at least one
// round. A budget below the proven upper bound may be.
func (a *analyzer) checkIterBudget(m *ast.Module, res *card.Result) {
	budget := a.opt.BudgetIterations
	if budget <= 0 {
		return
	}
	recursive := 0
	for _, scc := range res.Graph.SCCs {
		if scc.Recursive {
			recursive++
		}
	}
	if recursive == 0 {
		return // nothing iterates; no budget can trip
	}
	switch {
	case budget < recursive:
		a.add(Diagnostic{
			Sev: Warning, Check: CheckInsufficientBudget, Module: m.Name,
			Line: m.Line, Col: m.Col,
			Message: fmt.Sprintf("iteration budget %d is provably insufficient: the module has %d recursive components and each needs at least one round",
				budget, recursive),
			Suggestion: "raise -max-iters (or the Budget.MaxIterations setting)",
		})
	case !math.IsInf(res.IterBound, 1) && float64(budget) < res.IterBound:
		a.add(Diagnostic{
			Sev: Warning, Check: CheckInsufficientBudget, Module: m.Name,
			Line: m.Line, Col: m.Col,
			Message: fmt.Sprintf("iteration budget %d may be insufficient: analysis bounds the fixpoint at ≤ %.0f rounds",
				budget, res.IterBound),
			Suggestion: "raise -max-iters, or ignore if the data keeps the fixpoint small",
		})
	}
}

// checkSubsumption reports rules made redundant by a more general rule of
// the same predicate (θ-subsumption): a substitution maps the general
// rule's head onto the specific one's and every general body literal onto
// a specific body literal, so every instance the specific rule derives the
// general one derives too. Aggregated rules are skipped (each rule feeds
// its own groups) and so are @multiset predicates (duplicate derivations
// are meaningful there).
func (a *analyzer) checkSubsumption(m *ast.Module) {
	multiset := make(map[string]bool, len(m.Ann.Multiset))
	for _, p := range m.Ann.Multiset {
		multiset[p] = true
	}
	byPred := make(map[ast.PredKey][]*ast.Rule)
	for _, r := range m.Rules {
		byPred[r.Head.Key()] = append(byPred[r.Head.Key()], r)
	}
	for key, rules := range byPred {
		if multiset[key.Name] || len(rules) < 2 || len(rules) > 32 {
			continue
		}
		reported := make(map[*ast.Rule]bool)
		for _, gen := range rules {
			if len(gen.Aggs) != 0 || len(gen.Body) > 8 {
				continue
			}
			for _, spec := range rules {
				if spec == gen || reported[spec] || len(spec.Aggs) != 0 {
					continue
				}
				if canonicalRule(gen) == canonicalRule(spec) {
					continue // alpha-equivalent: duplicate-rule reports it
				}
				if subsumes(gen, spec) {
					reported[spec] = true
					a.add(Diagnostic{
						Sev: Warning, Check: CheckSubsumedRule, Module: m.Name,
						Line: spec.Line, Col: spec.Col,
						Message: fmt.Sprintf("rule is subsumed by the more general rule at line %d: every fact it derives is already derived there",
							gen.Line),
						Suggestion: "delete the subsumed rule; it only costs evaluation time",
					})
				}
			}
		}
	}
}

// subsumes reports whether gen θ-subsumes spec: some substitution θ over
// gen's variables maps gen's head to spec's head and every gen body
// literal to some spec body literal (spec's variables act as constants).
func subsumes(gen, spec *ast.Rule) bool {
	if len(gen.Body) > len(spec.Body)+1 { // literals may share targets, but prune the hopeless
		return false
	}
	theta := make(map[*term.Var]term.Term)
	if !matchArgs(gen.Head.Args, spec.Head.Args, theta) {
		return false
	}
	return matchBody(gen.Body, spec.Body, theta)
}

func matchBody(gens []ast.Literal, specs []ast.Literal, theta map[*term.Var]term.Term) bool {
	if len(gens) == 0 {
		return true
	}
	g := &gens[0]
	for i := range specs {
		s := &specs[i]
		if s.Pred != g.Pred || s.Neg != g.Neg || len(s.Args) != len(g.Args) {
			continue
		}
		var added []*term.Var
		if matchArgsTrail(g.Args, s.Args, theta, &added) {
			if matchBody(gens[1:], specs, theta) {
				return true
			}
		}
		for _, v := range added {
			delete(theta, v)
		}
	}
	return false
}

func matchArgs(pat, tgt []term.Term, theta map[*term.Var]term.Term) bool {
	var added []*term.Var
	if matchArgsTrail(pat, tgt, theta, &added) {
		return true
	}
	for _, v := range added {
		delete(theta, v)
	}
	return false
}

func matchArgsTrail(pat, tgt []term.Term, theta map[*term.Var]term.Term, added *[]*term.Var) bool {
	if len(pat) != len(tgt) {
		return false
	}
	for i := range pat {
		if !matchTerm(pat[i], tgt[i], theta, added) {
			return false
		}
	}
	return true
}

// matchTerm one-way matches a pattern term against a target term: pattern
// variables bind (consistently) to target subterms; target variables are
// constants that only an identically-bound pattern variable can match.
func matchTerm(pat, tgt term.Term, theta map[*term.Var]term.Term, added *[]*term.Var) bool {
	if v, ok := pat.(*term.Var); ok {
		if b, bound := theta[v]; bound {
			return term.Equal(b, tgt)
		}
		theta[v] = tgt
		*added = append(*added, v)
		return true
	}
	pf, pok := pat.(*term.Functor)
	tf, tok := tgt.(*term.Functor)
	if pok && tok {
		if pf.Sym != tf.Sym || len(pf.Args) != len(tf.Args) {
			return false
		}
		for i := range pf.Args {
			if !matchTerm(pf.Args[i], tf.Args[i], theta, added) {
				return false
			}
		}
		return true
	}
	if pok || tok {
		return false
	}
	if _, ok := tgt.(*term.Var); ok {
		return false // a pattern constant never matches a target variable
	}
	return term.Equal(pat, tgt)
}

// canonicalRule renders a rule with variables renamed V1..Vn in order of
// first occurrence — the alpha-equivalence key the upgraded duplicate-rule
// check compares (two rules that differ only in variable names derive
// exactly the same facts).
func canonicalRule(r *ast.Rule) string {
	names := make(map[*term.Var]string)
	var b strings.Builder
	writeCanonLit := func(l *ast.Literal) {
		if l.Neg {
			b.WriteString("not ")
		}
		b.WriteString(l.Pred)
		b.WriteByte('(')
		for i, arg := range l.Args {
			if i > 0 {
				b.WriteByte(',')
			}
			writeCanonTerm(&b, arg, names)
		}
		b.WriteByte(')')
	}
	writeCanonLit(&r.Head)
	for _, ag := range r.Aggs {
		fmt.Fprintf(&b, "@%d=%s(", ag.Pos, ag.Op)
		writeCanonTerm(&b, ag.Arg, names)
		b.WriteByte(')')
	}
	b.WriteString(":-")
	for i := range r.Body {
		if i > 0 {
			b.WriteByte(',')
		}
		writeCanonLit(&r.Body[i])
	}
	return b.String()
}

func writeCanonTerm(b *strings.Builder, t term.Term, names map[*term.Var]string) {
	switch x := t.(type) {
	case *term.Var:
		n, ok := names[x]
		if !ok {
			n = "V" + itoa(len(names)+1)
			names[x] = n
		}
		b.WriteString(n)
	case *term.Functor:
		b.WriteString(x.Sym)
		if len(x.Args) > 0 {
			b.WriteByte('(')
			for i, arg := range x.Args {
				if i > 0 {
					b.WriteByte(',')
				}
				writeCanonTerm(b, arg, names)
			}
			b.WriteByte(')')
		}
	default:
		b.WriteString(t.String())
	}
}
