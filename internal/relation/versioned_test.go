package relation

import (
	"fmt"
	"testing"

	"coral/internal/term"
)

func groundFact(args ...string) Fact {
	ts := make([]term.Term, len(args))
	for i, a := range args {
		ts[i] = term.Atom(a)
	}
	return Fact{Args: ts}
}

func drainNames(t *testing.T, it Iterator) []string {
	t.Helper()
	var out []string
	for {
		f, ok := it.Next()
		if !ok {
			return out
		}
		out = append(out, f.String())
	}
}

// TestPrefixViewIsolation: facts appended after capture are invisible to a
// Prefix through every read path — Scan, ScanRange, Lookup, Len — while the
// live relation sees them.
func TestPrefixViewIsolation(t *testing.T) {
	r := NewHashRelation("edge", 2)
	if err := r.MakeIndex(0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		r.Insert(groundFact("a", fmt.Sprintf("b%d", i)))
	}
	p := r.PrefixView()
	for i := 5; i < 10; i++ {
		r.Insert(groundFact("a", fmt.Sprintf("b%d", i)))
	}

	if got, want := p.Len(), 5; got != want {
		t.Errorf("Prefix.Len = %d, want %d", got, want)
	}
	if got, want := r.Len(), 10; got != want {
		t.Errorf("live Len = %d, want %d", got, want)
	}
	if got := drainNames(t, p.Scan()); len(got) != 5 {
		t.Errorf("Prefix.Scan returned %d facts, want 5: %v", len(got), got)
	}
	pat := []term.Term{term.Atom("a"), term.NewVar("X")}
	env := term.NewEnv(1)
	if got := len(Drain(p.Lookup(pat, env))); got != 5 {
		t.Errorf("Prefix.Lookup returned %d facts, want 5", got)
	}
	if got := len(Drain(r.Lookup(pat, env))); got != 10 {
		t.Errorf("live Lookup returned %d facts, want 10", got)
	}
	// Range reads clamp at the captured mark.
	if got := len(Drain(p.ScanRange(0, 100))); got != 5 {
		t.Errorf("Prefix.ScanRange(0,100) returned %d facts, want 5", got)
	}
	if got := len(Drain(p.LookupRange(pat, env, 0, 100))); got != 5 {
		t.Errorf("Prefix.LookupRange(0,100) returned %d facts, want 5", got)
	}
	if p.Snapshot() != 5 {
		t.Errorf("Prefix.Snapshot = %d, want 5", p.Snapshot())
	}
	if !p.Valid() {
		t.Error("Prefix invalidated by appends; appends must not invalidate")
	}
}

// TestPrefixValidity: destructive mutations (delete, truncate, clear)
// invalidate a captured Prefix; appends never do.
func TestPrefixValidity(t *testing.T) {
	r := NewHashRelation("p", 1)
	r.Insert(groundFact("a"))
	r.Insert(groundFact("b"))

	p := r.PrefixView()
	r.Insert(groundFact("c"))
	if !p.Valid() {
		t.Fatal("append invalidated the prefix")
	}

	r.Delete([]term.Term{term.Atom("a")}, nil)
	if p.Valid() {
		t.Fatal("delete below the mark left the prefix valid")
	}

	p2 := r.PrefixView()
	r.TruncateTo(1)
	if p2.Valid() {
		t.Fatal("truncation left the prefix valid")
	}

	p3 := r.PrefixView()
	r.Clear()
	if p3.Valid() {
		t.Fatal("clear left the prefix valid")
	}
}

// TestPrefixAtClamps: PrefixAt clamps a future mark to the current extent.
func TestPrefixAtClamps(t *testing.T) {
	r := NewHashRelation("p", 1)
	r.Insert(groundFact("a"))
	p := r.PrefixAt(99)
	if p.Snapshot() != 1 {
		t.Fatalf("PrefixAt(99).Snapshot = %d, want 1", p.Snapshot())
	}
	if p.Name() != "p" || p.Arity() != 1 || p.Rel() != r {
		t.Fatal("Prefix metadata does not mirror the relation")
	}
}

// TestLiveWithin: tombstones inside the range are not counted, and bounds
// are clamped.
func TestLiveWithin(t *testing.T) {
	r := NewHashRelation("p", 1)
	for _, a := range []string{"a", "b", "c", "d"} {
		r.Insert(groundFact(a))
	}
	r.Delete([]term.Term{term.Atom("b")}, nil)
	if got := r.LiveWithin(0, 4); got != 3 {
		t.Errorf("LiveWithin(0,4) = %d, want 3", got)
	}
	if got := r.LiveWithin(1, 3); got != 1 {
		t.Errorf("LiveWithin(1,3) = %d, want 1 (only c; b is dead)", got)
	}
	if got := r.LiveWithin(0, 100); got != 3 {
		t.Errorf("LiveWithin(0,100) = %d, want 3 (clamped)", got)
	}
	if got := r.LiveWithin(-5, 2); got != 1 {
		t.Errorf("LiveWithin(-5,2) = %d, want 1 (clamped)", got)
	}
}
