package relation

import (
	"fmt"
	"testing"

	"coral/internal/term"
)

func atom(s string) term.Term { return term.Atom(s) }

func fact(args ...term.Term) Fact { return NewFact(args, nil) }

func edgeRel(t *testing.T, n int) *HashRelation {
	t.Helper()
	r := NewHashRelation("edge", 2)
	for i := 0; i < n; i++ {
		if !r.Insert(fact(term.Int(i), term.Int(i+1))) {
			t.Fatalf("insert edge(%d,%d) rejected", i, i+1)
		}
	}
	return r
}

func TestHashRelationBasics(t *testing.T) {
	r := edgeRel(t, 3)
	if r.Len() != 3 || r.Name() != "edge" || r.Arity() != 2 {
		t.Fatalf("Len/Name/Arity wrong: %d %s %d", r.Len(), r.Name(), r.Arity())
	}
	if got := len(Drain(r.Scan())); got != 3 {
		t.Errorf("scan yielded %d facts", got)
	}
	// Duplicate rejected.
	if r.Insert(fact(term.Int(0), term.Int(1))) {
		t.Error("duplicate accepted")
	}
	if r.Len() != 3 {
		t.Error("Len changed on duplicate")
	}
	if r.InsertAttempts() != 4 {
		t.Errorf("InsertAttempts = %d, want 4", r.InsertAttempts())
	}
}

func TestHashRelationArityPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("arity mismatch did not panic")
		}
	}()
	NewHashRelation("p", 2).Insert(fact(term.Int(1)))
}

func TestMultisetSemantics(t *testing.T) {
	r := NewHashRelation("p", 1)
	r.Multiset = true
	r.Insert(fact(term.Int(1)))
	if !r.Insert(fact(term.Int(1))) {
		t.Error("multiset rejected duplicate")
	}
	if r.Len() != 2 {
		t.Errorf("Len = %d, want 2", r.Len())
	}
}

func TestMarksAndRanges(t *testing.T) {
	r := NewHashRelation("p", 1)
	r.Insert(fact(term.Int(1)))
	m1 := r.Snapshot()
	r.Insert(fact(term.Int(2)))
	r.Insert(fact(term.Int(3)))
	m2 := r.Snapshot()
	r.Insert(fact(term.Int(4)))

	old := Drain(r.ScanRange(0, m1))
	delta := Drain(r.ScanRange(m1, m2))
	tail := Drain(r.ScanRange(m2, r.Snapshot()))
	if len(old) != 1 || len(delta) != 2 || len(tail) != 1 {
		t.Fatalf("ranges: %d %d %d, want 1 2 1", len(old), len(delta), len(tail))
	}
	if !term.Equal(delta[0].Args[0], term.Int(2)) || !term.Equal(delta[1].Args[0], term.Int(3)) {
		t.Error("delta contents wrong")
	}
	// Union of ranges equals full scan (segment property).
	all := Drain(r.Scan())
	if len(all) != len(old)+len(delta)+len(tail) {
		t.Error("ranges do not partition the relation")
	}
}

func TestDelete(t *testing.T) {
	r := edgeRel(t, 5)
	// Delete edges starting at 2.
	n := r.Delete([]term.Term{term.Int(2), term.NewVar("X")}, nil)
	if n != 1 || r.Len() != 4 {
		t.Fatalf("deleted %d, len %d", n, r.Len())
	}
	for _, f := range Drain(r.Scan()) {
		if term.Equal(f.Args[0], term.Int(2)) {
			t.Error("deleted fact still visible in scan")
		}
	}
	// Deleted fact can be reinserted.
	if !r.Insert(fact(term.Int(2), term.Int(3))) {
		t.Error("reinsert after delete rejected")
	}
}

func TestArgIndexLookup(t *testing.T) {
	r := edgeRel(t, 100)
	r.MakeIndex(0)
	if !r.HasIndex(0) || r.HasIndex(1) {
		t.Fatal("HasIndex wrong")
	}
	it := r.Lookup([]term.Term{term.Int(42), term.NewVar("Y")}, nil)
	got := Drain(it)
	if len(got) != 1 || !term.Equal(got[0].Args[1], term.Int(43)) {
		t.Fatalf("indexed lookup got %v", got)
	}
	// Unbound indexed position degrades to scan but stays correct.
	all := Drain(r.Lookup([]term.Term{term.NewVar("X"), term.NewVar("Y")}, nil))
	if len(all) != 100 {
		t.Errorf("free lookup got %d facts", len(all))
	}
}

func TestArgIndexAddedLate(t *testing.T) {
	r := edgeRel(t, 10)
	r.MakeIndex(1) // added after facts exist: must index existing facts
	got := Drain(r.Lookup([]term.Term{term.NewVar("X"), term.Int(5)}, nil))
	if len(got) != 1 || !term.Equal(got[0].Args[0], term.Int(4)) {
		t.Fatalf("late index lookup got %v", got)
	}
	r.MakeIndex(1) // duplicate definition is a no-op
}

func TestArgIndexVarBucket(t *testing.T) {
	r := NewHashRelation("p", 2)
	r.MakeIndex(0)
	r.Insert(fact(atom("a"), term.Int(1)))
	// Non-ground fact at the indexed position goes to the var bucket and is
	// returned on every lookup.
	x := term.NewVar("X")
	r.Insert(NewFact([]term.Term{x, term.Int(2)}, nil))
	got := Drain(r.Lookup([]term.Term{atom("a"), term.NewVar("V")}, nil))
	if len(got) != 2 {
		t.Fatalf("lookup missed var-bucket fact: got %d", len(got))
	}
	got = Drain(r.Lookup([]term.Term{atom("zzz"), term.NewVar("V")}, nil))
	if len(got) != 1 || got[0].NVars != 1 {
		t.Fatalf("lookup of absent key should yield only var-bucket fact, got %v", got)
	}
}

func TestIndexRangeRestriction(t *testing.T) {
	r := NewHashRelation("p", 1)
	r.MakeIndex(0)
	r.Insert(fact(atom("k")))
	m := r.Snapshot()
	r.Insert(fact(atom("k2")))
	// Same key inserted again is a dup; insert different fact with same hash
	// bucket is fine. Look up "k" restricted to after m: nothing.
	got := Drain(r.LookupRange([]term.Term{atom("k")}, nil, m, r.Snapshot()))
	if len(got) != 0 {
		t.Errorf("range-restricted lookup leaked old facts: %v", got)
	}
	got = Drain(r.LookupRange([]term.Term{atom("k")}, nil, 0, m))
	if len(got) != 1 {
		t.Errorf("range-restricted lookup lost facts: %v", got)
	}
}

func TestIndexLookupUnderEnv(t *testing.T) {
	r := edgeRel(t, 10)
	r.MakeIndex(0)
	// Pattern var bound through an environment must key the index.
	env := term.NewEnv(1)
	var tr term.Trail
	x := &term.Var{Name: "X", Index: 0}
	term.Bind(x, env, term.Int(7), nil, &tr)
	got := Drain(r.Lookup([]term.Term{x, term.NewVar("Y")}, env))
	if len(got) != 1 || !term.Equal(got[0].Args[1], term.Int(8)) {
		t.Fatalf("env-bound lookup got %v", got)
	}
}

func TestPatternIndex(t *testing.T) {
	r := NewHashRelation("emp", 2)
	// @make_index emp(Name, addr(Street, City))(Name, City).
	pat := []term.Term{
		term.NewVar("Name"),
		term.NewFunctor("addr", term.NewVar("Street"), term.NewVar("City")),
	}
	r.MakePatternIndex(pat, []string{"Name", "City"})
	for i := 0; i < 50; i++ {
		city := atom(fmt.Sprintf("city%d", i%7))
		street := atom(fmt.Sprintf("street%d", i))
		name := atom(fmt.Sprintf("name%d", i%10))
		r.Insert(fact(name, term.NewFunctor("addr", street, city)))
	}
	// Retrieve name5 in city5 without knowing the street: only i=5
	// satisfies i%10==5 && i%7==5.
	q := []term.Term{atom("name5"), term.NewFunctor("addr", term.NewVar("S"), atom("city5"))}
	got := Drain(r.Lookup(q, nil))
	if len(got) != 1 {
		t.Fatalf("pattern index lookup got %d facts, want 1", len(got))
	}
	if !term.Equal(got[0].Args[0], atom("name5")) {
		t.Errorf("wrong fact: %v", got[0])
	}
}

func TestPatternIndexOverflow(t *testing.T) {
	r := NewHashRelation("emp", 2)
	pat := []term.Term{
		term.NewVar("Name"),
		term.NewFunctor("addr", term.NewVar("Street"), term.NewVar("City")),
	}
	r.MakePatternIndex(pat, []string{"Name", "City"})
	// A fact not matching the pattern goes to overflow and is returned on
	// every indexed lookup.
	r.Insert(fact(atom("odd"), atom("noaddr")))
	r.Insert(fact(atom("n"), term.NewFunctor("addr", atom("s"), atom("c"))))
	q := []term.Term{atom("n"), term.NewFunctor("addr", term.NewVar("S"), atom("c"))}
	got := Drain(r.Lookup(q, nil))
	if len(got) != 2 {
		t.Fatalf("overflow fact not returned: got %d", len(got))
	}
	// A query the pattern cannot key falls back to a scan.
	got = Drain(r.Lookup([]term.Term{term.NewVar("N"), term.NewVar("A")}, nil))
	if len(got) != 2 {
		t.Errorf("fallback scan got %d", len(got))
	}
}

func TestSubsumptionChecks(t *testing.T) {
	r := NewHashRelation("p", 2)
	x := term.NewVar("X")
	// Insert the general fact p(X, b).
	if !r.Insert(NewFact([]term.Term{x, atom("b")}, nil)) {
		t.Fatal("general fact rejected")
	}
	// Instances are subsumed.
	if r.Insert(fact(atom("a"), atom("b"))) {
		t.Error("subsumed instance accepted")
	}
	// A variant is a duplicate.
	if r.Insert(NewFact([]term.Term{term.NewVar("Y"), atom("b")}, nil)) {
		t.Error("variant accepted")
	}
	// A non-instance is accepted.
	if !r.Insert(fact(atom("a"), atom("c"))) {
		t.Error("non-instance rejected")
	}
	if r.Len() != 2 {
		t.Errorf("Len = %d, want 2", r.Len())
	}
}

func TestAggSelMin(t *testing.T) {
	r := NewHashRelation("path", 3) // path(X, Y, Cost)
	r.AddAggSel(&AggSel{GroupPos: []int{0, 1}, Op: AggMin, ValuePos: 2})
	if !r.Insert(fact(atom("a"), atom("b"), term.Int(10))) {
		t.Fatal("first fact rejected")
	}
	// Costlier fact discarded.
	if r.Insert(fact(atom("a"), atom("b"), term.Int(12))) {
		t.Error("costlier fact accepted")
	}
	// Cheaper fact replaces: old fact deleted.
	if !r.Insert(fact(atom("a"), atom("b"), term.Int(7))) {
		t.Fatal("cheaper fact rejected")
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (stale fact not deleted)", r.Len())
	}
	got := Drain(r.Scan())
	if !term.Equal(got[0].Args[2], term.Int(7)) {
		t.Errorf("kept fact has cost %v", got[0].Args[2])
	}
	// Different group is independent.
	if !r.Insert(fact(atom("a"), atom("c"), term.Int(100))) {
		t.Error("different group rejected")
	}
}

func TestAggSelKeepsEqualCostTies(t *testing.T) {
	// Without an any() selection, distinct facts of equal cost in the same
	// group are all retained.
	r := NewHashRelation("path", 4)
	r.AddAggSel(&AggSel{GroupPos: []int{0, 1}, Op: AggMin, ValuePos: 3})
	if !r.Insert(fact(atom("a"), atom("b"), atom("via1"), term.Int(5))) {
		t.Fatal("first tie rejected")
	}
	if !r.Insert(fact(atom("a"), atom("b"), atom("via2"), term.Int(5))) {
		t.Fatal("equal-cost tie rejected")
	}
	if r.Len() != 2 {
		t.Errorf("Len = %d, want 2", r.Len())
	}
}

func TestAggSelMinTiesAndAny(t *testing.T) {
	// path(X, Y, P, C) with min(C) over (X,Y) and any(P) over (X,Y,C) — the
	// exact pair of annotations from the paper's shortest-path program.
	r := NewHashRelation("path", 4)
	r.AddAggSel(&AggSel{GroupPos: []int{0, 1}, Op: AggMin, ValuePos: 3})
	r.AddAggSel(&AggSel{GroupPos: []int{0, 1, 3}, Op: AggAny, ValuePos: 2})
	p1 := term.MakeList(atom("e1"))
	p2 := term.MakeList(atom("e2"))
	if !r.Insert(fact(atom("a"), atom("b"), p1, term.Int(5))) {
		t.Fatal("first path rejected")
	}
	// Equal cost, different witness path: any() rejects it.
	if r.Insert(fact(atom("a"), atom("b"), p2, term.Int(5))) {
		t.Error("second equal-cost path accepted despite any()")
	}
	// Cheaper path replaces.
	if !r.Insert(fact(atom("a"), atom("b"), p2, term.Int(3))) {
		t.Fatal("cheaper path rejected")
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d, want 1", r.Len())
	}
}

func TestAggSelMax(t *testing.T) {
	r := NewHashRelation("best", 2)
	r.AddAggSel(&AggSel{GroupPos: []int{0}, Op: AggMax, ValuePos: 1})
	r.Insert(fact(atom("g"), term.Int(1)))
	if r.Insert(fact(atom("g"), term.Int(0))) {
		t.Error("smaller value accepted under max")
	}
	if !r.Insert(fact(atom("g"), term.Int(9))) {
		t.Error("larger value rejected under max")
	}
	got := Drain(r.Scan())
	if len(got) != 1 || !term.Equal(got[0].Args[1], term.Int(9)) {
		t.Errorf("kept %v", got)
	}
}

func TestClear(t *testing.T) {
	r := edgeRel(t, 5)
	r.MakeIndex(0)
	r.Clear()
	if r.Len() != 0 || len(Drain(r.Scan())) != 0 {
		t.Error("Clear left facts behind")
	}
	// Index still works after clear.
	r.Insert(fact(term.Int(1), term.Int(2)))
	got := Drain(r.Lookup([]term.Term{term.Int(1), term.NewVar("X")}, nil))
	if len(got) != 1 {
		t.Error("index broken after Clear")
	}
}

func TestListRelation(t *testing.T) {
	r := NewListRelation("p", 2)
	r.Insert(fact(term.Int(1), term.Int(2)))
	if r.Insert(fact(term.Int(1), term.Int(2))) {
		t.Error("list relation accepted duplicate")
	}
	r.Insert(fact(term.Int(3), term.Int(4)))
	if r.Len() != 2 || r.Name() != "p" || r.Arity() != 2 {
		t.Error("list relation metadata wrong")
	}
	if n := len(Drain(r.Lookup([]term.Term{term.Int(1), term.NewVar("X")}, nil))); n != 2 {
		t.Errorf("lookup (scan) got %d", n)
	}
	if n := r.Delete([]term.Term{term.Int(1), term.NewVar("X")}, nil); n != 1 {
		t.Errorf("deleted %d", n)
	}
	if r.Len() != 1 {
		t.Error("Len after delete wrong")
	}
	m := r.Snapshot()
	r.Insert(fact(term.Int(9), term.Int(9)))
	if n := len(Drain(r.ScanRange(m, r.Snapshot()))); n != 1 {
		t.Errorf("range scan got %d", n)
	}
}

func TestComputedRelation(t *testing.T) {
	// between(X) generating integers 0..4.
	r := NewComputed("gen", 1, func(pattern []term.Term, env *term.Env) Iterator {
		var facts []Fact
		for i := 0; i < 5; i++ {
			facts = append(facts, GroundFact(term.Int(i)))
		}
		return SliceIterator(facts)
	})
	if r.Name() != "gen" || r.Arity() != 1 || r.Len() != 0 {
		t.Error("metadata wrong")
	}
	if n := len(Drain(r.Scan())); n != 5 {
		t.Errorf("scan got %d", n)
	}
	if n := len(Drain(r.ScanRange(0, 0))); n != 5 {
		t.Errorf("initial range got %d", n)
	}
	if n := len(Drain(r.ScanRange(1, 2))); n != 0 {
		t.Errorf("delta range got %d", n)
	}
	defer func() {
		if recover() == nil {
			t.Error("insert into computed did not panic")
		}
	}()
	r.Insert(fact(term.Int(0)))
}

func TestRelationInterfaces(t *testing.T) {
	var _ Relation = NewHashRelation("a", 1)
	var _ Relation = NewListRelation("b", 1)
	var _ Relation = NewComputed("c", 1, nil)
	var _ Deleter = NewHashRelation("a", 1)
	var _ Deleter = NewListRelation("b", 1)
}
