package relation

import (
	"coral/internal/term"
)

// JoinTable is the build side of a hash join: a transient hash table over
// the facts of one scan range, keyed by the values at a fixed subset of
// argument positions. Where an argIndex is a persistent structure on a
// relation's whole history, a JoinTable is built for one rule evaluation
// over exactly the ordinal range the semi-naive discipline assigns, probed
// many times, and discarded (or cached per range by the engine).
//
// Both containers are pre-sized from the relation's live statistics — the
// fact slice to the expected row count and the bucket map to the expected
// distinct key count — which avoids rehash-and-copy cycles during the
// build (hash-join pre-sizing is a measured win; see DESIGN.md §5.14).
//
// Facts whose key positions are not all ground go to an overflow list and
// are returned on every probe, mirroring the argIndex "var" bucket: a
// non-ground stored fact can unify with any key. Probes whose own key
// values are not all ground degrade to scanning the whole table.
//
// Entries are numbered in insertion order, and Probe merges its bucket
// with the overflow list in ascending entry order, so a probe enumerates
// candidates in exactly the order the equivalent nested-loops scan would —
// only the non-matching ones are skipped. A JoinTable is written by one
// goroutine during its build and read-only afterwards; concurrent probes
// of a completed table are safe.
type JoinTable struct {
	keyPos   []int
	facts    []Fact
	buckets  map[uint64][]int32
	overflow []int32
}

// NewJoinTable creates an empty build table keyed on keyPos. rowsHint and
// distinctHint pre-size the fact slice and the bucket map; zero hints fall
// back to small defaults and grow as usual.
func NewJoinTable(keyPos []int, rowsHint, distinctHint int) *JoinTable {
	if rowsHint < 0 {
		rowsHint = 0
	}
	if distinctHint < 0 {
		distinctHint = 0
	}
	if distinctHint > rowsHint {
		distinctHint = rowsHint
	}
	return &JoinTable{
		keyPos:  keyPos,
		facts:   make([]Fact, 0, rowsHint),
		buckets: make(map[uint64][]int32, distinctHint),
	}
}

// KeyPos returns the key positions the table is built on.
func (t *JoinTable) KeyPos() []int { return t.keyPos }

// Len returns the number of facts added.
func (t *JoinTable) Len() int { return len(t.facts) }

// Add appends one build-side fact. The caller drives the scan (and its
// budget polling); Add itself is O(1) amortized.
func (t *JoinTable) Add(f Fact) {
	ord := int32(len(t.facts))
	t.facts = append(t.facts, f)
	h, ground := term.HashBound(f.Args, t.keyPos, nil)
	if !ground {
		t.overflow = append(t.overflow, ord)
		return
	}
	t.buckets[h] = append(t.buckets[h], ord)
}

// JoinProbe enumerates the table entries whose key may match one probe
// pattern. It is reusable — Reset rebinds it to a new probe without
// allocating — so the engine keeps one per join frame.
type JoinProbe struct {
	table   *JoinTable
	bucket  []int32 // matching-hash entries, ascending; nil on full scan
	over    []int32 // overflow entries, ascending; nil on full scan
	bi, oi  int
	scanPos int // next entry on the full-scan path; -1 for bucket mode
}

// Probe resets p to enumerate candidates for pattern under env. A probe
// with ground key values visits the matching bucket merged with the
// overflow list; a non-ground probe visits every entry.
func (t *JoinTable) Probe(pattern []term.Term, env *term.Env, p *JoinProbe) {
	p.table = t
	h, ground := term.HashBound(pattern, t.keyPos, env)
	if !ground {
		p.bucket, p.over = nil, nil
		p.scanPos = 0
		return
	}
	p.bucket = t.buckets[h]
	p.over = t.overflow
	p.bi, p.oi = 0, 0
	p.scanPos = -1
}

// ProbeValues resets p to enumerate candidates whose key equals vals — one
// term per key position, in KeyPos order. It is the environment-free probe
// used when the caller already extracted the key values (e.g. from a ground
// outer fact). Non-ground vals degrade to a full scan, like Probe.
func (t *JoinTable) ProbeValues(vals []term.Term, p *JoinProbe) {
	p.table = t
	h, ground := term.HashBound(vals, identityPos(len(vals)), nil)
	if !ground {
		p.bucket, p.over = nil, nil
		p.scanPos = 0
		return
	}
	p.bucket = t.buckets[h]
	p.over = t.overflow
	p.bi, p.oi = 0, 0
	p.scanPos = -1
}

// identityPos returns [0, 1, ..., n-1], cached for small n.
func identityPos(n int) []int {
	if n <= len(identityPosCache) {
		return identityPosCache[:n]
	}
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

var identityPosCache = [...]int{0, 1, 2, 3, 4, 5, 6, 7}

// Next implements Iterator: the next candidate fact in entry order.
func (p *JoinProbe) Next() (Fact, bool) {
	if p.scanPos >= 0 {
		if p.scanPos >= len(p.table.facts) {
			return Fact{}, false
		}
		f := p.table.facts[p.scanPos]
		p.scanPos++
		return f, true
	}
	// Merge bucket and overflow in ascending entry order (both sorted).
	hasB := p.bi < len(p.bucket)
	hasO := p.oi < len(p.over)
	switch {
	case hasB && (!hasO || p.bucket[p.bi] < p.over[p.oi]):
		f := p.table.facts[p.bucket[p.bi]]
		p.bi++
		return f, true
	case hasO:
		f := p.table.facts[p.over[p.oi]]
		p.oi++
		return f, true
	default:
		return Fact{}, false
	}
}
