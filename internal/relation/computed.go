package relation

import (
	"coral/internal/term"
)

// GenFunc produces the facts of a computed relation for a given call
// pattern. pattern/env describe the bindings at the call site; the function
// returns an iterator over (canonical, environment-free) facts, which the
// caller unifies against the pattern. Returning a superset of the matching
// facts is allowed; returning facts for an insufficiently bound pattern may
// be rejected by returning nil, which the engine reports as an
// instantiation error.
type GenFunc func(pattern []term.Term, env *term.Env) Iterator

// Computed is a relation defined by a host-language function — the paper's
// "relations defined by C++ functions" (§6.2, §7.2). It is read-only.
type Computed struct {
	name  string
	arity int
	gen   GenFunc
}

// NewComputed wraps fn as a relation.
func NewComputed(name string, arity int, fn GenFunc) *Computed {
	return &Computed{name: name, arity: arity, gen: fn}
}

// Name implements Relation.
func (r *Computed) Name() string { return r.name }

// Arity implements Relation.
func (r *Computed) Arity() int { return r.arity }

// Len implements Relation; the extent of a computed relation is unknown.
func (r *Computed) Len() int { return 0 }

// Insert implements Relation. Computed relations are read-only; inserting
// is a program error.
func (r *Computed) Insert(Fact) bool {
	// lint:allow panic — the compiler never targets a computed relation; this is a bug, not a bad query
	panic("relation: insert into computed relation " + r.name)
}

// Scan implements Relation by generating with an all-free pattern.
func (r *Computed) Scan() Iterator {
	pattern := make([]term.Term, r.arity)
	env := term.NewEnv(r.arity)
	for i := range pattern {
		pattern[i] = &term.Var{Index: i}
	}
	it := r.gen(pattern, env)
	if it == nil {
		return EmptyIterator()
	}
	return it
}

// Lookup implements Relation.
func (r *Computed) Lookup(pattern []term.Term, env *term.Env) Iterator {
	it := r.gen(pattern, env)
	if it == nil {
		return EmptyIterator()
	}
	return it
}

// Snapshot implements Relation; computed relations have no history.
func (r *Computed) Snapshot() Mark { return 0 }

// ScanRange implements Relation. Ranges are meaningless for computed
// relations: the full extent is returned for the initial range and nothing
// for later deltas, which is exactly what semi-naive evaluation needs for a
// relation that never changes.
func (r *Computed) ScanRange(from, to Mark) Iterator {
	if from == 0 {
		return r.Scan()
	}
	return EmptyIterator()
}

// LookupRange implements Relation (see ScanRange).
func (r *Computed) LookupRange(pattern []term.Term, env *term.Env, from, to Mark) Iterator {
	if from == 0 {
		return r.Lookup(pattern, env)
	}
	return EmptyIterator()
}
