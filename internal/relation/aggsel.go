package relation

import (
	"coral/internal/term"
)

// AggSel is a run-time aggregate selection on a relation (paper §5.5.2):
//
//	@aggregate_selection p(X,Y,P,C) (X,Y) min(C).
//
// keeps, for every group (X,Y), only the facts whose C is minimal; costlier
// facts are discarded on insert, and previously kept facts are deleted when
// a cheaper one arrives. The shortest-path program of Figure 3 depends on
// this: without it the program may run forever generating cyclic paths.
//
// The op "any" implements the paper's choice-like selection
// (@aggregate_selection path(X,Y,P,C)(X,Y,C) any(P)): at most one fact per
// group is retained, turning the relation into a witness function.
//
// A relation may carry several aggregate selections; a fact is admitted
// only if every selection admits it.
type AggSel struct {
	// GroupPos are the argument positions forming the group key.
	GroupPos []int
	// Op is the aggregate operation.
	Op AggOp
	// ValuePos is the argument position being minimized/maximized
	// (ignored for AggAny).
	ValuePos int

	groups map[uint64]*aggGroup
}

// AggOp enumerates aggregate-selection operations.
type AggOp uint8

// Supported aggregate-selection operations.
const (
	AggMin AggOp = iota
	AggMax
	AggAny
)

// String names the operation as it appears in annotations.
func (op AggOp) String() string {
	switch op {
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	case AggAny:
		return "any"
	}
	return "aggop?"
}

type aggGroup struct {
	best term.Term // current best value (nil for AggAny)
	ords []int32   // ordinals of currently kept facts in this group
	// key collision safety: the exact group values.
	keyVals []term.Term
	next    *aggGroup // hash-collision chain
}

// AddAggSel attaches an aggregate selection to the relation. Selections
// apply to subsequently inserted facts; attach before populating.
func (r *HashRelation) AddAggSel(sel *AggSel) {
	for _, p := range sel.GroupPos {
		if p < 0 || p >= r.arity {
			// lint:allow panic — compiler-checked positions; reaching this is a bug, not a bad query
			panic("relation: aggregate selection group position out of range")
		}
	}
	if sel.Op != AggAny && (sel.ValuePos < 0 || sel.ValuePos >= r.arity) {
		// lint:allow panic — compiler-checked positions; reaching this is a bug, not a bad query
		panic("relation: aggregate selection value position out of range")
	}
	sel.groups = make(map[uint64]*aggGroup)
	r.aggSels = append(r.aggSels, sel)
}

// AggSels returns the attached selections.
func (r *HashRelation) AggSels() []*AggSel { return r.aggSels }

func (s *AggSel) clear() { s.groups = make(map[uint64]*aggGroup) }

// truncate rebuilds the group state after the relation was cut back to
// limit ordinals: groups must not hold rolled-back ordinals, and best
// values must reflect only surviving facts. Replaying commit over the
// surviving live facts is sound because the live set is already
// selection-consistent — every live fact in a group carries the group's
// best value (worse facts were rejected, bettered facts are dead), so the
// replay never displaces anything. Facts tombstoned before the truncation
// point stay dead: truncate restores insertions, not deletions.
func (s *AggSel) truncate(r *HashRelation, limit int32) {
	s.groups = make(map[uint64]*aggGroup)
	for ord := int32(0); ord < limit; ord++ {
		if r.facts[ord].dead {
			continue
		}
		s.commit(r, r.facts[ord].fact, ord)
	}
}

// groupFor returns the group of f, creating it if asked. A fact with
// non-ground group values falls outside the selection (nil group): the
// selection does not constrain it.
func (s *AggSel) groupFor(f Fact, create bool) *aggGroup {
	keyVals := make([]term.Term, len(s.GroupPos))
	for i, p := range s.GroupPos {
		v := f.Args[p]
		if !term.IsGround(v) {
			return nil
		}
		keyVals[i] = v
	}
	h := term.HashArgs(keyVals)
	for g := s.groups[h]; g != nil; g = g.next {
		if term.EqualArgs(g.keyVals, keyVals) {
			return g
		}
	}
	if !create {
		return nil
	}
	g := &aggGroup{keyVals: keyVals, next: s.groups[h]}
	s.groups[h] = g
	return g
}

// check reports whether f would be admitted. It does not mutate state.
func (s *AggSel) check(f Fact) bool {
	g := s.groupFor(f, false)
	if g == nil {
		return true
	}
	switch s.Op {
	case AggAny:
		return len(g.ords) == 0
	case AggMin:
		return s.cmpValue(f, g) <= 0
	case AggMax:
		return s.cmpValue(f, g) >= 0
	}
	return true
}

// cmpValue compares f's value against the group's current best.
func (s *AggSel) cmpValue(f Fact, g *aggGroup) int {
	v := f.Args[s.ValuePos]
	if g.best == nil {
		return 0
	}
	if term.IsNumeric(v) && term.IsNumeric(g.best) {
		return term.NumCompare(v, g.best)
	}
	return term.Compare(v, g.best)
}

// commit records the admitted fact (stored at ord) and deletes facts it
// displaces. The caller has already appended f.
func (s *AggSel) commit(r *HashRelation, f Fact, ord int32) {
	g := s.groupFor(f, true)
	if g == nil {
		return
	}
	switch s.Op {
	case AggAny:
		g.ords = append(g.ords, ord)
	case AggMin, AggMax:
		c := s.cmpValue(f, g)
		strictlyBetter := (s.Op == AggMin && c < 0) || (s.Op == AggMax && c > 0)
		if g.best == nil || strictlyBetter {
			for _, old := range g.ords {
				r.deleteOrd(old)
			}
			g.ords = g.ords[:0]
			g.best = f.Args[s.ValuePos]
		}
		g.ords = append(g.ords, ord)
	}
}
