package relation

import (
	"coral/internal/term"
)

// ListRelation is the paper's "relations organized as linked lists" (§7.2):
// the simplest relation representation, with no indexes. It exists both as
// a baseline (experiment E06 measures what indexes buy) and as the smallest
// example of adding a new relation implementation behind the common
// interface.
type ListRelation struct {
	name  string
	arity int
	facts []storedFact
	live  int
	// Multiset disables the (linear) duplicate check.
	Multiset bool
}

// NewListRelation creates an empty list relation.
func NewListRelation(name string, arity int) *ListRelation {
	return &ListRelation{name: name, arity: arity}
}

// Name implements Relation.
func (r *ListRelation) Name() string { return r.name }

// Arity implements Relation.
func (r *ListRelation) Arity() int { return r.arity }

// Len implements Relation.
func (r *ListRelation) Len() int { return r.live }

// Insert implements Relation. The duplicate check is a linear scan — the
// point of this representation is its simplicity, not its speed.
func (r *ListRelation) Insert(f Fact) bool {
	if len(f.Args) != r.arity {
		// lint:allow panic — arity is fixed at compile time; a mismatch is a bug, not a bad query
		panic("relation: arity mismatch inserting into " + r.name)
	}
	if !r.Multiset {
		for i := range r.facts {
			sf := &r.facts[i]
			if !sf.dead && sf.fact.NVars == f.NVars && term.EqualArgs(sf.fact.Args, f.Args) {
				return false
			}
		}
	}
	r.facts = append(r.facts, storedFact{fact: f})
	r.live++
	return true
}

// Delete implements Deleter.
func (r *ListRelation) Delete(pattern []term.Term, env *term.Env) int {
	pat, nvars := term.ResolveArgs(pattern, env)
	var tr term.Trail
	removed := 0
	penv := term.NewEnv(nvars)
	for i := range r.facts {
		sf := &r.facts[i]
		if sf.dead {
			continue
		}
		fenv := term.NewEnv(sf.fact.NVars)
		m := tr.Mark()
		ok := term.UnifyArgs(pat, penv, sf.fact.Args, fenv, &tr)
		tr.Undo(m)
		if ok {
			sf.dead = true
			r.live--
			removed++
		}
	}
	return removed
}

// Snapshot implements Relation.
func (r *ListRelation) Snapshot() Mark { return Mark(len(r.facts)) }

// Scan implements Relation.
func (r *ListRelation) Scan() Iterator { return r.ScanRange(0, r.Snapshot()) }

// ScanRange implements Relation.
func (r *ListRelation) ScanRange(from, to Mark) Iterator {
	return &listIter{rel: r, pos: int(from), to: int(to)}
}

// Lookup implements Relation; a list relation has no indexes, so every
// lookup is a scan.
func (r *ListRelation) Lookup(pattern []term.Term, env *term.Env) Iterator {
	return r.Scan()
}

// LookupRange implements Relation.
func (r *ListRelation) LookupRange(pattern []term.Term, env *term.Env, from, to Mark) Iterator {
	return r.ScanRange(from, to)
}

type listIter struct {
	rel *ListRelation
	pos int
	to  int
}

func (it *listIter) Next() (Fact, bool) {
	for it.pos < it.to {
		sf := &it.rel.facts[it.pos]
		it.pos++
		if !sf.dead {
			return sf.fact, true
		}
	}
	return Fact{}, false
}
