package relation

import (
	"math"

	"coral/internal/term"
)

// Per-relation statistics for the cost-based join planner (engine/plan.go).
// A HashRelation maintains them incrementally: cardinality is the live fact
// count it already tracks, and each argument position carries a linear
// counting sketch of the distinct values inserted there. The sketch costs a
// single hash and a bit set per argument per insert, and a popcount-style
// scan only when Stats is asked for — cheap enough to leave always on.
//
// Deletes do not decrement the sketches (a value may occur in several
// facts), so the raw sketch estimates count values *ever inserted*. Under
// heavy churn that inflates them without bound relative to the live facts;
// Stats therefore clamps every Distinct estimate to the live row count —
// the number of distinct values in a relation can never exceed its rows —
// and Clear resets the sketches along with the facts.

// Stats summarizes a relation for cost-based planning.
type Stats struct {
	// Rows is the live fact count.
	Rows int
	// Distinct estimates the number of distinct values per argument
	// position, clamped to Rows (the sketches count values ever inserted
	// and are never decremented by deletes; see Stats).
	Distinct []int
}

// sketchBits is the bitmap size of one distinct-value sketch. Linear
// counting stays within a few percent up to roughly the bitmap size, which
// comfortably covers the cardinalities where join order matters most;
// beyond saturation the estimate is clamped (see estimate).
const sketchBits = 2048

// distinctSketch is a linear counting sketch: hash each value to one of m
// bits; with z zero bits remaining, the distinct count is ≈ m·ln(m/z).
type distinctSketch struct {
	bits [sketchBits / 64]uint64
	set  int // bits currently set, to make estimate O(1)
}

func (s *distinctSketch) add(h uint64) {
	i := h % sketchBits
	w, b := i/64, uint64(1)<<(i%64)
	if s.bits[w]&b == 0 {
		s.bits[w] |= b
		s.set++
	}
}

// estimate returns the linear-counting estimate, and saturated reports that
// every bit is set — past that point the formula is undefined and any fixed
// cap would price a 10M-row relation and a 20k-row relation identically, so
// Stats substitutes the live row count (an upper bound the planner already
// trusts) for saturated sketches.
func (s *distinctSketch) estimate() (est int, saturated bool) {
	z := sketchBits - s.set
	if z == 0 {
		return 0, true
	}
	return int(math.Round(sketchBits * math.Log(float64(sketchBits)/float64(z)))), false
}

func (s *distinctSketch) reset() { *s = distinctSketch{} }

// noteStats updates the per-argument sketches for an accepted insert.
func (r *HashRelation) noteStats(f Fact) {
	if r.colSketch == nil {
		r.colSketch = make([]distinctSketch, r.arity)
	}
	for i, a := range f.Args {
		r.colSketch[i].add(term.Hash(a))
	}
}

// Stats returns the relation's planner statistics. The receiver may be nil
// (a zero Stats means "unknown"). Stats is read-only and, like every other
// read, safe under the single-writer contract.
func (r *HashRelation) Stats() Stats {
	if r == nil {
		return Stats{}
	}
	st := Stats{Rows: r.live, Distinct: make([]int, r.arity)}
	for i := range st.Distinct {
		if r.colSketch == nil {
			continue
		}
		d, saturated := r.colSketch[i].estimate()
		if saturated {
			// Past saturation the sketch carries no information beyond
			// "many"; the live row count is the tightest upper bound left.
			d = r.live
		}
		if d > r.live {
			// Sketches count values ever inserted; delete churn can push
			// the estimate past the live rows. Clamp — distinct values
			// cannot outnumber facts.
			d = r.live
		}
		st.Distinct[i] = d
	}
	return st
}
