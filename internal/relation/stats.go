package relation

import (
	"math"

	"coral/internal/term"
)

// Per-relation statistics for the cost-based join planner (engine/plan.go).
// A HashRelation maintains them incrementally: cardinality is the live fact
// count it already tracks, and each argument position carries a linear
// counting sketch of the distinct values inserted there. The sketch costs a
// single hash and a bit set per argument per insert, and a popcount-style
// scan only when Stats is asked for — cheap enough to leave always on.
//
// Deletes do not decrement the sketches (a value may occur in several
// facts), so distinct counts are estimates of values *ever inserted*; for
// the planner's purpose — ranking join orders — that bias is harmless, and
// Clear resets the sketches along with the facts.

// Stats summarizes a relation for cost-based planning.
type Stats struct {
	// Rows is the live fact count.
	Rows int
	// Distinct estimates the number of distinct values per argument
	// position (values ever inserted; never decremented by deletes).
	Distinct []int
}

// sketchBits is the bitmap size of one distinct-value sketch. Linear
// counting stays within a few percent up to roughly the bitmap size, which
// comfortably covers the cardinalities where join order matters most;
// beyond saturation the estimate is clamped (see estimate).
const sketchBits = 2048

// distinctSketch is a linear counting sketch: hash each value to one of m
// bits; with z zero bits remaining, the distinct count is ≈ m·ln(m/z).
type distinctSketch struct {
	bits [sketchBits / 64]uint64
	set  int // bits currently set, to make estimate O(1)
}

func (s *distinctSketch) add(h uint64) {
	i := h % sketchBits
	w, b := i/64, uint64(1)<<(i%64)
	if s.bits[w]&b == 0 {
		s.bits[w] |= b
		s.set++
	}
}

func (s *distinctSketch) estimate() int {
	z := sketchBits - s.set
	if z == 0 {
		// Saturated: report the cap; the planner only needs "many".
		return sketchBits * 8
	}
	return int(math.Round(sketchBits * math.Log(float64(sketchBits)/float64(z))))
}

func (s *distinctSketch) reset() { *s = distinctSketch{} }

// noteStats updates the per-argument sketches for an accepted insert.
func (r *HashRelation) noteStats(f Fact) {
	if r.colSketch == nil {
		r.colSketch = make([]distinctSketch, r.arity)
	}
	for i, a := range f.Args {
		r.colSketch[i].add(term.Hash(a))
	}
}

// Stats returns the relation's planner statistics. The receiver may be nil
// (a zero Stats means "unknown"). Stats is read-only and, like every other
// read, safe under the single-writer contract.
func (r *HashRelation) Stats() Stats {
	if r == nil {
		return Stats{}
	}
	st := Stats{Rows: r.live, Distinct: make([]int, r.arity)}
	for i := range st.Distinct {
		if r.colSketch != nil {
			st.Distinct[i] = r.colSketch[i].estimate()
		}
	}
	return st
}
