package relation

import (
	"math/rand"
	"testing"
	"testing/quick"

	"coral/internal/term"
)

// Property: for any sequence of inserts, the union of mark-range scans
// equals the full scan (the paper's subsidiary-relation union guarantee,
// §3.2), and an indexed lookup returns a superset of the unifying facts a
// scan would find.
func TestQuickMarksPartition(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rel := NewHashRelation("p", 2)
		rel.MakeIndex(0)
		var marks []Mark
		for i := 0; i < 60; i++ {
			if r.Intn(10) == 0 {
				marks = append(marks, rel.Snapshot())
			}
			rel.Insert(GroundFact(term.Int(int64(r.Intn(8))), term.Int(int64(r.Intn(8)))))
		}
		marks = append([]Mark{0}, append(marks, rel.Snapshot())...)
		total := 0
		for i := 0; i+1 < len(marks); i++ {
			total += len(Drain(rel.ScanRange(marks[i], marks[i+1])))
		}
		return total == len(Drain(rel.Scan()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: indexed lookup finds every fact that unifies with the pattern.
func TestQuickIndexComplete(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rel := NewHashRelation("p", 2)
		rel.MakeIndex(0)
		rel.MakeIndex(0, 1)
		for i := 0; i < 80; i++ {
			rel.Insert(GroundFact(term.Int(int64(r.Intn(6))), term.Int(int64(r.Intn(6)))))
		}
		key := term.Int(int64(r.Intn(6)))
		pattern := []term.Term{key, term.NewVar("Y")}
		// Count by scan+unify.
		want := 0
		for _, f := range Drain(rel.Scan()) {
			if term.Equal(f.Args[0], key) {
				want++
			}
		}
		// Count by indexed lookup + unify filter.
		got := 0
		for _, f := range Drain(rel.Lookup(pattern, nil)) {
			if term.Equal(f.Args[0], key) {
				got++
			}
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: with duplicate checking on, a relation holds exactly the set of
// distinct facts inserted; with Multiset it holds them all.
func TestQuickDuplicateElimination(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		set := NewHashRelation("s", 1)
		bag := NewHashRelation("b", 1)
		bag.Multiset = true
		distinct := map[int64]bool{}
		n := 0
		for i := 0; i < 50; i++ {
			v := int64(r.Intn(10))
			set.Insert(GroundFact(term.Int(v)))
			bag.Insert(GroundFact(term.Int(v)))
			distinct[v] = true
			n++
		}
		return set.Len() == len(distinct) && bag.Len() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: under a min aggregate selection, the relation retains exactly
// the group minima of everything inserted.
func TestQuickAggSelMin(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rel := NewHashRelation("p", 2)
		rel.AddAggSel(&AggSel{GroupPos: []int{0}, Op: AggMin, ValuePos: 1})
		best := map[int64]int64{}
		for i := 0; i < 80; i++ {
			g := int64(r.Intn(5))
			v := int64(r.Intn(100))
			rel.Insert(GroundFact(term.Int(g), term.Int(v)))
			if old, ok := best[g]; !ok || v < old {
				best[g] = v
			}
		}
		if rel.Len() != len(best) {
			// Ties can retain multiple facts per group; recount.
			seen := map[int64]map[int64]bool{}
			for _, f := range Drain(rel.Scan()) {
				g := int64(f.Args[0].(term.Int))
				v := int64(f.Args[1].(term.Int))
				if v != best[g] {
					return false
				}
				if seen[g] == nil {
					seen[g] = map[int64]bool{}
				}
				seen[g][v] = true
			}
			return true
		}
		for _, f := range Drain(rel.Scan()) {
			g := int64(f.Args[0].(term.Int))
			v := int64(f.Args[1].(term.Int))
			if v != best[g] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: deletes never leave ghosts in scans, lookups, or ranges.
func TestQuickDeleteConsistency(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rel := NewHashRelation("p", 1)
		rel.MakeIndex(0)
		for i := 0; i < 30; i++ {
			rel.Insert(GroundFact(term.Int(int64(i))))
		}
		victim := term.Int(int64(r.Intn(30)))
		rel.Delete([]term.Term{victim}, nil)
		for _, f := range Drain(rel.Scan()) {
			if term.Equal(f.Args[0], victim) {
				return false
			}
		}
		return len(Drain(rel.Lookup([]term.Term{victim}, nil))) == 0 &&
			rel.Len() == 29
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
