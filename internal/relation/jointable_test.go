package relation

import (
	"testing"

	"coral/internal/term"
)

func drainProbe(p *JoinProbe) []string {
	var out []string
	for {
		f, ok := p.Next()
		if !ok {
			return out
		}
		out = append(out, f.String())
	}
}

func TestJoinTableGroundProbe(t *testing.T) {
	jt := NewJoinTable([]int{0}, 8, 4)
	for i := int64(0); i < 8; i++ {
		jt.Add(GroundFact(term.Int(i%4), term.Int(i)))
	}
	if jt.Len() != 8 {
		t.Fatalf("Len = %d, want 8", jt.Len())
	}
	var p JoinProbe
	jt.Probe([]term.Term{term.Int(2), term.NewVar("X")}, nil, &p)
	got := drainProbe(&p)
	want := []string{"(2, 2)", "(2, 6)"}
	if !equalStrings(got, want) {
		t.Fatalf("probe(2) = %v, want %v", got, want)
	}
	// A reused probe must reset cleanly.
	jt.Probe([]term.Term{term.Int(7), term.NewVar("X")}, nil, &p)
	if got := drainProbe(&p); len(got) != 0 {
		t.Fatalf("probe(7) = %v, want empty", got)
	}
}

// TestJoinTableEntryOrder pins the candidate-order contract: a probe
// enumerates candidates in insertion (ordinal) order, merging its hash
// bucket with the overflow entries — the same order the nested-loops scan
// it replaces would consider the matching facts in.
func TestJoinTableEntryOrder(t *testing.T) {
	jt := NewJoinTable([]int{0}, 0, 0)
	jt.Add(GroundFact(term.Int(1), term.Int(10)))
	// Non-ground key: lands in overflow, returned on every probe.
	jt.Add(NewFact([]term.Term{term.NewVar("Y"), term.Int(11)}, term.NewEnv(1)))
	jt.Add(GroundFact(term.Int(1), term.Int(12)))
	jt.Add(GroundFact(term.Int(2), term.Int(13)))

	var p JoinProbe
	jt.Probe([]term.Term{term.Int(1), term.NewVar("X")}, nil, &p)
	got := drainProbe(&p)
	want := []string{"(1, 10)", "(Y, 11)", "(1, 12)"}
	if !equalStrings(got, want) {
		t.Fatalf("probe(1) = %v, want %v (entry order with overflow merged)", got, want)
	}
}

// TestJoinTableNonGroundProbe: an unbound probe key degrades to scanning
// every entry, again in insertion order.
func TestJoinTableNonGroundProbe(t *testing.T) {
	jt := NewJoinTable([]int{0}, 2, 2)
	jt.Add(GroundFact(term.Int(1), term.Int(10)))
	jt.Add(GroundFact(term.Int(2), term.Int(20)))
	var p JoinProbe
	jt.Probe([]term.Term{term.NewVar("K"), term.NewVar("X")}, nil, &p)
	got := drainProbe(&p)
	want := []string{"(1, 10)", "(2, 20)"}
	if !equalStrings(got, want) {
		t.Fatalf("unbound probe = %v, want %v", got, want)
	}
}

// TestJoinTableMatchesLookup cross-checks a JoinTable probe against the
// relation's own indexed lookup over a range: same facts, same order.
func TestJoinTableMatchesLookup(t *testing.T) {
	r := NewHashRelation("e", 2)
	if err := r.MakeIndex(0); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 200; i++ {
		r.Insert(GroundFact(term.Int(i%17), term.Int(i)))
	}
	from, to := Mark(20), Mark(150)

	jt := NewJoinTable([]int{0}, int(to-from), 17)
	it := r.ScanRange(from, to)
	for {
		f, ok := it.Next()
		if !ok {
			break
		}
		jt.Add(f)
	}
	for k := int64(0); k < 17; k++ {
		pat := []term.Term{term.Int(k), term.NewVar("X")}
		var p JoinProbe
		jt.Probe(pat, nil, &p)
		var probed []string
		for {
			f, ok := p.Next()
			if !ok {
				break
			}
			probed = append(probed, f.String())
		}
		var looked []string
		li := r.LookupRange(pat, nil, from, to)
		for {
			f, ok := li.Next()
			if !ok {
				break
			}
			looked = append(looked, f.String())
		}
		if !equalStrings(probed, looked) {
			t.Fatalf("key %d: probe = %v, lookup = %v", k, probed, looked)
		}
	}
}

// TestJoinTablePreSizing: hints must not change behavior (they only size
// the containers), including degenerate hints.
func TestJoinTablePreSizing(t *testing.T) {
	for _, hints := range [][2]int{{-5, -5}, {0, 0}, {4, 100}, {100, 4}} {
		jt := NewJoinTable([]int{1}, hints[0], hints[1])
		for i := int64(0); i < 6; i++ {
			jt.Add(GroundFact(term.Int(i), term.Int(i%2)))
		}
		var p JoinProbe
		jt.Probe([]term.Term{term.NewVar("X"), term.Int(0)}, nil, &p)
		got := drainProbe(&p)
		want := []string{"(0, 0)", "(2, 0)", "(4, 0)"}
		if !equalStrings(got, want) {
			t.Fatalf("hints %v: probe = %v, want %v", hints, got, want)
		}
	}
}
