package relation

import (
	"fmt"

	"coral/internal/term"
)

// patternIndex implements the paper's "pattern form indices" (§3.3,
// §5.5.1): an index on a specified pattern that can contain variables,
// keyed on a chosen subset of those variables. The paper's example —
//
//	@make_index emp(Name, addr(Street, City))(Name, City).
//
// — retrieves employees by name and city without knowing the street, even
// though City sits inside a functor term.
//
// A fact is indexed by matching the pattern against it (one-way); the
// ground bindings of the key variables form the hash key. Facts the
// pattern does not match, or whose key bindings are non-ground, go to the
// overflow bucket and are returned on every lookup.
type patternIndex struct {
	rel     *HashRelation
	pattern []term.Term // canonical: variables numbered 0..nvars-1
	keyVars []int       // indices of the key variables
	nvars   int

	buckets  map[uint64][]int32
	overflow []int32
}

// MakePatternIndex adds a pattern-form index. pattern must have the
// relation's arity; its variables are canonically renumbered here. keyVars
// names the key variables (by their names in pattern). A pattern of the
// wrong arity or a key name absent from the pattern is reported as an
// error, leaving the relation unchanged.
func (r *HashRelation) MakePatternIndex(pattern []term.Term, keyNames []string) error {
	if len(pattern) != r.arity {
		return fmt.Errorf("relation: %s/%d: index pattern has arity %d", r.name, r.arity, len(pattern))
	}
	canon, nvars := term.ResolveArgs(pattern, nil)
	byName := map[string]int{}
	collectVarNames(canon, byName)
	keyVars := make([]int, 0, len(keyNames))
	for _, name := range keyNames {
		idx, ok := byName[name]
		if !ok {
			return fmt.Errorf("relation: %s/%d: key variable %s not in index pattern", r.name, r.arity, name)
		}
		keyVars = append(keyVars, idx)
	}
	ix := &patternIndex{
		rel:     r,
		pattern: canon,
		keyVars: keyVars,
		nvars:   nvars,
		buckets: make(map[uint64][]int32),
	}
	for ord := range r.facts {
		ix.insert(r.facts[ord].fact, int32(ord))
	}
	r.patIndexes = append(r.patIndexes, ix)
	return nil
}

func collectVarNames(ts []term.Term, out map[string]int) {
	var walk func(t term.Term)
	walk = func(t term.Term) {
		switch x := t.(type) {
		case *term.Var:
			if _, ok := out[x.Name]; !ok && x.Name != "" {
				out[x.Name] = x.Index
			}
		case *term.Functor:
			for _, a := range x.Args {
				walk(a)
			}
		}
	}
	for _, t := range ts {
		walk(t)
	}
}

func (ix *patternIndex) insert(f Fact, ord int32) {
	key, ok := ix.keyFor(f.Args, term.NewEnv(f.NVars))
	if !ok {
		ix.overflow = append(ix.overflow, ord)
		return
	}
	ix.buckets[key] = append(ix.buckets[key], ord)
}

// keyFor matches the index pattern against args (under env) and hashes the
// key variable bindings. ok is false when the pattern does not match or a
// key binding is non-ground.
func (ix *patternIndex) keyFor(args []term.Term, env *term.Env) (uint64, bool) {
	penv := term.NewEnv(ix.nvars)
	var tr term.Trail
	defer tr.Undo(0)
	if !term.MatchArgs(ix.pattern, penv, args, env, &tr) {
		return 0, false
	}
	keyTerms := make([]term.Term, len(ix.keyVars))
	for i, kv := range ix.keyVars {
		t, e := term.Deref(&term.Var{Index: kv}, penv)
		if !term.GroundUnder(t, e) {
			return 0, false
		}
		res, _ := term.ResolveArgs([]term.Term{t}, e)
		keyTerms[i] = res[0]
	}
	return term.HashArgs(keyTerms), true
}

func (ix *patternIndex) clear() {
	ix.buckets = make(map[uint64][]int32)
	ix.overflow = nil
}

// lookup keys the query pattern the same way facts are keyed. ok is false
// when this index cannot serve the query (pattern mismatch or non-ground
// key), in which case the relation falls back to other indexes or a scan.
func (ix *patternIndex) lookup(pattern []term.Term, env *term.Env, from, to int32) (Iterator, bool) {
	key, ok := ix.keyFor(pattern, env)
	if !ok {
		return nil, false
	}
	return newOrdIter(ix.rel, from, to, ix.buckets[key], ix.overflow), true
}
