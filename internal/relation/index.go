package relation

import (
	"fmt"

	"coral/internal/term"
)

// argIndex is the traditional multi-attribute hash index on a subset of the
// arguments of a relation (paper §3.3, "argument form indices"). Facts
// whose indexed arguments are not all ground hash to the special bucket the
// paper calls "var" and are returned on every lookup.
type argIndex struct {
	rel       *HashRelation
	positions []int
	buckets   map[uint64][]int32
	varBucket []int32
}

// MakeIndex adds an argument-form index on the given positions, indexing
// existing facts. Adding an index that already exists is a no-op (paper
// allows indices to "be added to existing relations"). An out-of-range
// position is reported as an error, leaving the relation unchanged.
func (r *HashRelation) MakeIndex(positions ...int) error {
	for _, p := range positions {
		if p < 0 || p >= r.arity {
			return fmt.Errorf("relation: %s/%d: index position %d out of range", r.name, r.arity, p)
		}
	}
	for _, ix := range r.indexes {
		if samePositions(ix.positions, positions) {
			return nil
		}
	}
	ix := &argIndex{rel: r, positions: positions, buckets: make(map[uint64][]int32)}
	for ord := range r.facts {
		// Dead facts keep postings until compaction; iterators skip them.
		ix.insert(r.facts[ord].fact, int32(ord))
	}
	r.indexes = append(r.indexes, ix)
	return nil
}

// HasIndex reports whether an argument-form index exists on exactly these
// positions.
func (r *HashRelation) HasIndex(positions ...int) bool {
	for _, ix := range r.indexes {
		if samePositions(ix.positions, positions) {
			return true
		}
	}
	return false
}

func samePositions(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (ix *argIndex) insert(f Fact, ord int32) {
	h, ground := term.HashBound(f.Args, ix.positions, nil)
	if !ground {
		ix.varBucket = append(ix.varBucket, ord)
		return
	}
	ix.buckets[h] = append(ix.buckets[h], ord)
}

func (ix *argIndex) clear() {
	ix.buckets = make(map[uint64][]int32)
	ix.varBucket = nil
}

// usable reports whether every indexed position is ground in the pattern
// under env.
func (ix *argIndex) usable(pattern []term.Term, env *term.Env) bool {
	for _, p := range ix.positions {
		if !term.GroundUnder(pattern[p], env) {
			return false
		}
	}
	return true
}

// lookup returns an iterator over the matching bucket plus the var bucket.
// It reports false when the pattern is not ground at the indexed positions.
func (ix *argIndex) lookup(pattern []term.Term, env *term.Env, from, to int32) (Iterator, bool) {
	h, ground := term.HashBound(pattern, ix.positions, env)
	if !ground {
		return nil, false
	}
	return newOrdIter(ix.rel, from, to, ix.buckets[h], ix.varBucket), true
}
