package relation

import (
	"coral/internal/term"
)

// Versioned reads (DESIGN.md §5.16). A HashRelation's append-only ordinal
// order makes "everything below mark M" a consistent historical view: facts
// never move (the facts slice is never compacted), posting lists are
// ordinal-sorted, and appends only extend the relation past any previously
// captured mark. A Prefix captures one such view — the mark plus the
// relation's destructive-mutation counter at capture time — and serves every
// read clamped below the mark. The coral server builds snapshot-isolated
// reader sessions out of these: a session captures a Prefix per base
// relation once, and each of its queries reads exactly the facts that were
// live at capture, however many append-only fact loads commit in between.
//
// A Prefix is a *logical* snapshot, not a synchronization device: reads
// through it obey the same single-writer contract as reads on the relation
// itself (§5.9). The server's epoch guard provides the mutual exclusion;
// the Prefix provides the cross-query consistency.
//
// Destructive changes — Delete, Clear, TruncateTo — can remove facts below
// a captured mark, silently breaking the "consistent historical view"
// promise. Valid detects that: it compares the relation's Mutations counter
// against the capture-time value, so a Prefix outlived by a destructive
// change reports itself stale instead of returning a torn view.

// Prefix is a read-only view of a HashRelation restricted to the facts
// that were present (and live) when the view was captured.
type Prefix struct {
	r    *HashRelation
	to   Mark
	muts int
}

// PrefixView captures the relation's current extent as a read view. Facts
// appended afterwards are invisible to it; see Valid for destructive
// changes.
func (r *HashRelation) PrefixView() *Prefix {
	return &Prefix{r: r, to: r.Snapshot(), muts: r.Mutations()}
}

// PrefixAt captures a read view at an explicit historical mark (clamped to
// the current extent).
func (r *HashRelation) PrefixAt(to Mark) *Prefix {
	if cur := r.Snapshot(); to > cur {
		to = cur
	}
	return &Prefix{r: r, to: to, muts: r.Mutations()}
}

// Rel returns the underlying relation (the engine unwraps it for planner
// statistics and hash-join build tables, whose scan ranges are bounded by
// Snapshot and therefore respect the cap).
func (p *Prefix) Rel() *HashRelation { return p.r }

// Valid reports whether the view still is the consistent historical state
// it captured: no destructive mutation (delete, truncation, clear) has hit
// the relation since. Appends never invalidate.
func (p *Prefix) Valid() bool {
	return p.r.Mutations() == p.muts && p.r.Snapshot() >= p.to
}

// Name implements the read side of Relation.
func (p *Prefix) Name() string { return p.r.Name() }

// Arity implements the read side of Relation.
func (p *Prefix) Arity() int { return p.r.Arity() }

// Len counts the live facts below the captured mark.
func (p *Prefix) Len() int { return p.r.LiveWithin(0, p.to) }

// Snapshot returns the captured mark: the view's extent never grows.
func (p *Prefix) Snapshot() Mark { return p.to }

// Scan iterates the captured prefix.
func (p *Prefix) Scan() Iterator { return p.r.ScanRange(0, p.to) }

// ScanRange iterates [from, to) clamped to the captured mark.
func (p *Prefix) ScanRange(from, to Mark) Iterator {
	if to > p.to {
		to = p.to
	}
	return p.r.ScanRange(from, to)
}

// Lookup is an index lookup restricted to the captured prefix.
func (p *Prefix) Lookup(pattern []term.Term, env *term.Env) Iterator {
	return p.r.LookupRange(pattern, env, 0, p.to)
}

// LookupRange is Lookup over [from, to) clamped to the captured mark.
func (p *Prefix) LookupRange(pattern []term.Term, env *term.Env, from, to Mark) Iterator {
	if to > p.to {
		to = p.to
	}
	return p.r.LookupRange(pattern, env, from, to)
}

// LiveWithin counts the live (non-tombstoned) facts with ordinals in
// [from, to) — the Len of a historical view.
func (r *HashRelation) LiveWithin(from, to Mark) int {
	lo, hi := int(from), int(to)
	if hi > len(r.facts) {
		hi = len(r.facts)
	}
	if lo < 0 {
		lo = 0
	}
	n := 0
	for ord := lo; ord < hi; ord++ {
		if !r.facts[ord].dead {
			n++
		}
	}
	return n
}
