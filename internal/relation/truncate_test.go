package relation

import (
	"fmt"
	"testing"

	"coral/internal/term"
)

// checkNoDanglingPostings asserts that no derived structure references an
// ordinal at or past the facts slice — the invariant an aborted round's
// rollback must restore (a dangling posting would make a later lookup
// index out of bounds or resurrect a rolled-back fact).
func checkNoDanglingPostings(t *testing.T, r *HashRelation) {
	t.Helper()
	limit := int32(len(r.facts))
	check := func(what string, l []int32) {
		for _, ord := range l {
			if ord >= limit {
				t.Fatalf("%s holds ordinal %d past truncation point %d", what, ord, limit)
			}
		}
	}
	for h, l := range r.dedup {
		if len(l) == 0 {
			t.Fatalf("dedup bucket %d left empty instead of deleted", h)
		}
		check("dedup", l)
	}
	check("nonground", r.nonground)
	for i, ix := range r.indexes {
		for _, l := range ix.buckets {
			check(fmt.Sprintf("argIndex %d", i), l)
		}
		check(fmt.Sprintf("argIndex %d varBucket", i), ix.varBucket)
	}
	for i, ix := range r.patIndexes {
		for _, l := range ix.buckets {
			check(fmt.Sprintf("patIndex %d", i), l)
		}
		check(fmt.Sprintf("patIndex %d overflow", i), ix.overflow)
	}
	for _, s := range r.aggSels {
		for _, g := range s.groups {
			for ; g != nil; g = g.next {
				check("aggsel group", g.ords)
				for _, ord := range g.ords {
					if r.facts[ord].dead {
						t.Fatalf("aggsel group holds dead ordinal %d", ord)
					}
				}
			}
		}
	}
}

func lookupAll(r *HashRelation, pattern []term.Term, nvars int) []string {
	var out []string
	it := r.Lookup(pattern, term.NewEnv(nvars))
	for {
		f, ok := it.Next()
		if !ok {
			return out
		}
		out = append(out, f.String())
	}
}

// TestTruncateToRestoresRollbackPoint is the regression test for aborted
// fixpoint rounds: after TruncateTo, no posting list, index bucket, stats
// sketch or aggregate group may point at a rolled-back fact, and lookups
// behave exactly as if the rolled-back inserts never happened — including
// re-inserting the same facts (the dedup map must not claim they exist).
func TestTruncateToRestoresRollbackPoint(t *testing.T) {
	r := NewHashRelation("p", 2)
	if err := r.MakeIndex(0); err != nil {
		t.Fatal(err)
	}
	if err := r.MakePatternIndex([]term.Term{term.NewVar("A"), term.NewVar("B")}, []string{"A"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		r.Insert(GroundFact(term.Int(int64(i%8)), term.Int(int64(i))))
	}
	// A non-ground fact below the mark must survive with its posting.
	r.Insert(NewFact([]term.Term{term.Int(99), term.NewVar("V")}, nil))

	mark := r.Snapshot()
	wantLen := r.Len()
	wantLookup := lookupAll(r, []term.Term{term.Int(3), term.NewVar("X")}, 1)

	// The "aborted round": more facts, some duplicates (rejected), some new.
	for i := 40; i < 90; i++ {
		r.Insert(GroundFact(term.Int(int64(i%8)), term.Int(int64(i))))
	}
	r.Insert(GroundFact(term.Int(3), term.Int(1000)))

	r.TruncateTo(mark)
	checkNoDanglingPostings(t, r)
	if r.Len() != wantLen {
		t.Fatalf("Len after rollback = %d, want %d", r.Len(), wantLen)
	}
	if got := lookupAll(r, []term.Term{term.Int(3), term.NewVar("X")}, 1); !equalStrings(got, wantLookup) {
		t.Fatalf("indexed lookup after rollback = %v, want %v", got, wantLookup)
	}

	// Rolled-back facts are gone from dedup: re-inserting them must succeed.
	if !r.Insert(GroundFact(term.Int(3), term.Int(1000))) {
		t.Fatal("re-insert of rolled-back fact rejected: dedup still remembers it")
	}
	// Facts below the mark are still present: duplicates stay rejected.
	if r.Insert(GroundFact(term.Int(3), term.Int(3))) {
		t.Fatal("duplicate of surviving fact accepted: dedup lost the prefix")
	}
}

// TestTruncateToRebuildsStatsSketches pins the planner-statistics half of
// the rollback: linear-counting sketches cannot forget, so TruncateTo must
// rebuild them from the survivors — otherwise an aborted round would
// permanently inflate distinct-value estimates.
func TestTruncateToRebuildsStatsSketches(t *testing.T) {
	r := NewHashRelation("p", 1)
	for i := 0; i < 10; i++ {
		r.Insert(GroundFact(term.Int(int64(i))))
	}
	mark := r.Snapshot()
	before := r.Stats()
	for i := 10; i < 500; i++ {
		r.Insert(GroundFact(term.Int(int64(i))))
	}
	r.TruncateTo(mark)
	after := r.Stats()
	if after.Rows != before.Rows {
		t.Fatalf("Rows after rollback = %d, want %d", after.Rows, before.Rows)
	}
	if after.Distinct[0] != before.Distinct[0] {
		t.Fatalf("Distinct estimate after rollback = %d, want %d (sketch not rebuilt)",
			after.Distinct[0], before.Distinct[0])
	}
}

// TestTruncateToAfterCompaction exercises the interaction with posting
// compaction: tombstones from deletes below the mark stay dead, the
// compaction baseline is re-clamped, and further churn still triggers
// compaction rather than being starved by a stale deadAtCompact.
func TestTruncateToAfterCompaction(t *testing.T) {
	defer func(old int) { compactMinDead = old }(compactMinDead)
	compactMinDead = 8

	r := NewHashRelation("p", 1)
	for i := 0; i < 30; i++ {
		r.Insert(GroundFact(term.Int(int64(i))))
	}
	for i := 0; i < 10; i++ {
		r.Delete([]term.Term{term.Int(int64(i))}, nil)
	}
	mark := r.Snapshot()
	wantLen := r.Len()

	// Churn past the mark until a compaction fires, then roll back.
	for i := 100; i < 140; i++ {
		r.Insert(GroundFact(term.Int(int64(i))))
	}
	for i := 100; i < 130; i++ {
		r.Delete([]term.Term{term.Int(int64(i))}, nil)
	}
	if r.deadAtCompact == 0 {
		t.Fatal("test setup: compaction never triggered")
	}
	r.TruncateTo(mark)
	checkNoDanglingPostings(t, r)
	if r.Len() != wantLen {
		t.Fatalf("Len after rollback = %d, want %d", r.Len(), wantLen)
	}
	if dead := len(r.facts) - r.live; r.deadAtCompact > dead {
		t.Fatalf("deadAtCompact = %d > actual tombstones %d", r.deadAtCompact, dead)
	}
	// Deletions below the mark stay deleted (rollback restores insertions,
	// not deletions). Lookup yields candidates, so check for the exact fact.
	for _, f := range lookupAll(r, []term.Term{term.NewVar("X")}, 1) {
		if f == "(3)" {
			t.Fatal("deleted fact resurrected by rollback")
		}
	}
	// Fresh churn must still trigger a compaction eventually.
	for i := 200; i < 240; i++ {
		r.Insert(GroundFact(term.Int(int64(i))))
	}
	base := r.deadAtCompact
	for i := 200; i < 240; i++ {
		r.Delete([]term.Term{term.Int(int64(i))}, nil)
	}
	if r.deadAtCompact <= base {
		t.Error("compaction starved after rollback: deadAtCompact never advanced")
	}
}

// TestTruncateToRebuildsAggGroups pins the aggregate-selection half: after
// rollback, groups must hold only surviving ordinals and the best value
// must revert to the pre-round best, so a new better-than-rolled-back (but
// worse-than-surviving) fact is correctly rejected.
func TestTruncateToRebuildsAggGroups(t *testing.T) {
	r := NewHashRelation("p", 2)
	sel := &AggSel{GroupPos: []int{0}, Op: AggMin, ValuePos: 1}
	r.AddAggSel(sel)
	r.Insert(GroundFact(term.Int(1), term.Int(50)))
	mark := r.Snapshot()

	// The aborted round improves the minimum twice.
	r.Insert(GroundFact(term.Int(1), term.Int(30)))
	r.Insert(GroundFact(term.Int(1), term.Int(10)))

	r.TruncateTo(mark)
	checkNoDanglingPostings(t, r)
	if r.Len() != 0 {
		// The displaced original is dead (rollback keeps deletions) —
		// documenting the contract under which the engine uses TruncateTo
		// only on selection-free relations.
		t.Logf("note: displaced fact stays dead, Len = %d", r.Len())
	}
	// The group must not remember the rolled-back best of 10: a fresh 20
	// must now be admitted (it would have been rejected against best=10).
	if !r.Insert(GroundFact(term.Int(1), term.Int(20))) {
		t.Fatal("insert rejected against a rolled-back best value")
	}
	got := lookupAll(r, []term.Term{term.Int(1), term.NewVar("X")}, 1)
	if len(got) != 1 {
		t.Fatalf("group holds %v, want exactly the fresh minimum", got)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
