// Package relation implements the CORAL relation representations (paper
// §3.2) and index structures (paper §3.3): in-memory hash relations with
// duplicate/subsumption checking, marks that distinguish facts inserted
// before and after a point in time (the basis of all semi-naive evaluation
// variants, §5.3), argument-form and pattern-form hash indexes, linked-list
// relations, and relations computed by user-supplied Go functions (the
// paper's C++-defined predicates, §6.2).
//
// Everything is consumed through the get-next-tuple iterator interface the
// paper builds the whole system around (§2, §5.6).
//
// # Concurrency annotations
//
// Relations follow the single-writer/multi-reader contract of DESIGN.md
// §5.9; Prefix (versioned.go) is the read-only snapshot view built on it.
// The repository lint suite (tools/lint) machine-checks the discipline:
// mutex-adjacent struct fields carry "guarded_by(<mu>)" or an
// "unguarded: <rationale>" comment (lockcheck, guardannot), and outside
// this package a Prefix may never be unwrapped into a mutating call or a
// writable store (roviol) — Rel() exists for bounded read paths only.
package relation

import (
	"coral/internal/term"
)

// Fact is one stored tuple. Args are environment-free canonical terms:
// unbound variables are renumbered densely from 0 in order of first
// occurrence and NVars is the number of distinct variables (0 for ground
// facts). CORAL permits non-ground facts — variables in facts are
// universally quantified (paper §3.1).
type Fact struct {
	Args  []term.Term
	NVars int
}

// NewFact canonicalizes args under env into a Fact.
func NewFact(args []term.Term, env *term.Env) Fact {
	resolved, n := term.ResolveArgs(args, env)
	return Fact{Args: resolved, NVars: n}
}

// GroundFact wraps already-ground, environment-free args without copying.
func GroundFact(args ...term.Term) Fact { return Fact{Args: args} }

// String renders the fact's argument list.
func (f Fact) String() string {
	s := "("
	for i, a := range f.Args {
		if i > 0 {
			s += ", "
		}
		s += a.String()
	}
	return s + ")"
}

// Iterator is the get-next-tuple interface (paper §2): it yields facts one
// at a time; ok is false when the scan is exhausted. Iterators are the only
// way any component reads a relation, which is what lets base, derived,
// computed and persistent relations interchange freely.
type Iterator interface {
	Next() (f Fact, ok bool)
}

// Mark is a point in a relation's insertion history. Facts inserted before
// and after a mark can be scanned separately (paper §3.2); semi-naive
// deltas are ranges between marks.
type Mark int

// Relation is the common interface of every relation implementation (class
// Relation in the paper). Implementations may be hash relations, list
// relations, Go-computed relations, or disk-resident relations from the
// storage package.
type Relation interface {
	// Name returns the predicate name.
	Name() string
	// Arity returns the number of arguments.
	Arity() int
	// Insert adds f (canonical, environment-free) and reports whether it
	// was new (false: rejected as duplicate, subsumed, or filtered by an
	// aggregate selection).
	Insert(f Fact) bool
	// Len returns the number of live facts.
	Len() int
	// Scan returns an iterator over all live facts.
	Scan() Iterator
	// Lookup returns an iterator over facts that may match pattern under
	// env, using the best available index; callers must still unify. A
	// relation without a usable index returns a full scan.
	Lookup(pattern []term.Term, env *term.Env) Iterator
	// Snapshot returns the current mark.
	Snapshot() Mark
	// ScanRange iterates facts inserted in the mark interval [from, to).
	ScanRange(from, to Mark) Iterator
	// LookupRange is Lookup restricted to [from, to).
	LookupRange(pattern []term.Term, env *term.Env, from, to Mark) Iterator
}

// Deleter is implemented by relations supporting deletion.
type Deleter interface {
	// Delete removes all facts matching pattern under env and returns how
	// many were removed.
	Delete(pattern []term.Term, env *term.Env) int
}

// emptyIter yields nothing.
type emptyIter struct{}

func (emptyIter) Next() (Fact, bool) { return Fact{}, false }

// EmptyIterator returns an iterator with no facts.
func EmptyIterator() Iterator { return emptyIter{} }

// factsIter iterates a materialized slice of facts.
type factsIter struct {
	facts []Fact
	pos   int
}

func (it *factsIter) Next() (Fact, bool) {
	if it.pos >= len(it.facts) {
		return Fact{}, false
	}
	f := it.facts[it.pos]
	it.pos++
	return f, true
}

// SliceIterator iterates over the given facts.
func SliceIterator(facts []Fact) Iterator { return &factsIter{facts: facts} }

// Drain collects all remaining facts from it.
func Drain(it Iterator) []Fact {
	var out []Fact
	for {
		f, ok := it.Next()
		if !ok {
			return out
		}
		out = append(out, f)
	}
}
