package relation

import (
	"testing"

	"coral/internal/term"
)

// TestStatsChurnClampsDistinct pins the delete-churn bound: the distinct
// sketches count values ever inserted and are never decremented, so heavy
// insert/delete cycling inflates the raw estimates far past the live fact
// count. Stats must clamp Distinct to Rows — a relation cannot hold more
// distinct values than facts.
func TestStatsChurnClampsDistinct(t *testing.T) {
	r := NewHashRelation("p", 2)
	// Churn: 40 cycles × 50 fresh values through a relation that keeps only
	// the last cycle's facts live.
	for cycle := 0; cycle < 40; cycle++ {
		base := int64(cycle * 50)
		for i := int64(0); i < 50; i++ {
			r.Insert(GroundFact(term.Int(base+i), term.Int(base+i)))
		}
		if cycle < 39 {
			for i := int64(0); i < 50; i++ {
				r.Delete([]term.Term{term.Int(base + i), term.Int(base + i)}, nil)
			}
		}
	}
	st := r.Stats()
	if st.Rows != 50 {
		t.Fatalf("Rows = %d, want 50", st.Rows)
	}
	for i, d := range st.Distinct {
		if d > st.Rows {
			t.Fatalf("Distinct[%d] = %d exceeds Rows = %d (churn not clamped)", i, d, st.Rows)
		}
		if d <= 0 {
			t.Fatalf("Distinct[%d] = %d, want a positive estimate", i, d)
		}
	}
}

// TestStatsSaturationFallsBackToRows pins the saturation fix: once every
// sketch bit is set, the linear-counting formula is undefined and the old
// code reported a fixed cap (sketchBits*8 = 16384), pricing a 10M-row
// relation and a 20k-row one identically. A saturated sketch must report
// the live row count instead.
func TestStatsSaturationFallsBackToRows(t *testing.T) {
	r := NewHashRelation("p", 1)
	// Insert well past the bitmap size so the sketch saturates with high
	// probability; 64k distinct hashes over 2048 bits leave no zero bit.
	const n = 65536
	for i := int64(0); i < n; i++ {
		r.Insert(GroundFact(term.Int(i)))
	}
	if _, saturated := r.colSketch[0].estimate(); !saturated {
		t.Fatalf("sketch not saturated after %d distinct inserts", n)
	}
	st := r.Stats()
	if st.Distinct[0] != st.Rows {
		t.Fatalf("saturated Distinct[0] = %d, want live rows %d", st.Distinct[0], st.Rows)
	}
	if st.Distinct[0] == sketchBits*8 {
		t.Fatalf("saturated estimate still reports the fixed cap %d", sketchBits*8)
	}
}

// TestStatsUnsaturatedEstimateTracksDistinct sanity-checks the linear
// counting estimate inside its accurate range (a guard that the clamp and
// saturation changes did not disturb the normal path).
func TestStatsUnsaturatedEstimateTracksDistinct(t *testing.T) {
	r := NewHashRelation("p", 2)
	const n = 500
	for i := int64(0); i < n; i++ {
		// First column: n distinct values; second column: 10 distinct.
		r.Insert(GroundFact(term.Int(i), term.Int(i%10)))
	}
	st := r.Stats()
	if st.Rows != n {
		t.Fatalf("Rows = %d, want %d", st.Rows, n)
	}
	lo, hi := n*9/10, n*11/10
	if st.Distinct[0] < lo || st.Distinct[0] > hi {
		t.Fatalf("Distinct[0] = %d, want within [%d, %d]", st.Distinct[0], lo, hi)
	}
	if st.Distinct[1] < 5 || st.Distinct[1] > 20 {
		t.Fatalf("Distinct[1] = %d, want near 10", st.Distinct[1])
	}
}
