package relation

import (
	"coral/internal/term"
)

// HashRelation is the default in-memory relation (paper §3.2). Facts are
// stored in insertion order; a Mark is simply a watermark into that order,
// which gives the paper's "subsidiary relation per interval between marks"
// its moral equivalent: every scan and every index lookup can be restricted
// to an ordinal range, and indexes keep working across marks (bucket
// postings are ordinal-sorted, so a range restriction is a binary search).
//
// Duplicate elimination ("subsumption checks", §4.2) is on by default:
// a fact is rejected if a variant of it is already present, or — when
// non-ground facts are involved — if an existing fact subsumes it. Setting
// Multiset disables the checks, giving SQL-style duplicate semantics.
//
// # Concurrency contract (DESIGN.md §5.9)
//
// A HashRelation is single-writer. Any number of goroutines may read
// concurrently — Scan/ScanRange/Lookup/LookupRange and their iterators —
// provided no goroutine is mutating the relation at the same time. The
// parallel fixpoint round exploits exactly this: workers read Mark-bounded
// prefixes frozen at the top of the round while all writes are buffered,
// and the single merge writer applies the buffer after every reader has
// reached the round barrier. There is no internal locking; interleaving a
// writer with concurrent readers is a data race.
//
// Within the single-writer regime, iterators stay valid across writes:
// appends only extend the facts slice beyond an iterator's bound, deletes
// only tombstone (the facts slice is never compacted, because ordinals are
// the Mark coordinate system), and posting-list compaction allocates fresh
// slices so an in-flight iterator keeps its — merely staler — view.
type HashRelation struct {
	name  string
	arity int

	facts []storedFact
	live  int

	// dedup maps the variant hash of a fact to the ordinals of facts with
	// that hash.
	dedup map[uint64][]int32
	// nonground lists ordinals of live non-ground facts (usually empty);
	// subsumption against these is linear.
	nonground []int32

	indexes    []*argIndex
	patIndexes []*patternIndex

	// Multiset disables duplicate and subsumption checks (paper §4.2).
	Multiset bool
	// aggSels filter insertions through aggregate selections (paper
	// §5.5.2); a fact is admitted only if every selection admits it.
	aggSels []*AggSel

	inserted int // total insert attempts, for statistics

	// colSketch holds one distinct-value sketch per argument position,
	// feeding Stats() for the cost-based join planner (see stats.go).
	colSketch []distinctSketch

	// deadAtCompact is the tombstone count at the last posting compaction;
	// compaction triggers on tombstones added since (see maybeCompact).
	deadAtCompact int

	// mutations counts destructive changes — deletes, truncations, clears.
	// Appends never bump it: a derived structure built over a mark-bounded
	// prefix (the engine's join build tables) stays valid across appends,
	// and checks this counter to detect everything else.
	mutations int
}

// compactMinDead is the minimum number of new tombstones before a posting
// compaction is considered (a package variable so tests can lower it).
var compactMinDead = 64

type storedFact struct {
	fact Fact
	dead bool
}

// NewHashRelation creates an empty hash relation.
func NewHashRelation(name string, arity int) *HashRelation {
	return &HashRelation{
		name:  name,
		arity: arity,
		dedup: make(map[uint64][]int32),
	}
}

// Name implements Relation.
func (r *HashRelation) Name() string { return r.name }

// Arity implements Relation.
func (r *HashRelation) Arity() int { return r.arity }

// Len implements Relation.
func (r *HashRelation) Len() int { return r.live }

// InsertAttempts returns the total number of Insert calls; the difference
// from Len measures duplicate work (experiments E01/E14).
func (r *HashRelation) InsertAttempts() int { return r.inserted }

// Insert implements Relation. f must be canonical (see Fact).
func (r *HashRelation) Insert(f Fact) bool {
	if len(f.Args) != r.arity {
		// lint:allow panic — arity is fixed at compile time; a mismatch is a bug, not a bad query
		panic("relation: arity mismatch inserting into " + r.name)
	}
	r.inserted++
	if !r.Multiset && r.isDuplicate(f) {
		return false
	}
	for _, s := range r.aggSels {
		if !s.check(f) {
			return false
		}
	}
	ord := r.append(f)
	for _, s := range r.aggSels {
		s.commit(r, f, ord)
	}
	return true
}

// append adds f unconditionally, updating dedup and indexes, and returns
// the new fact's ordinal.
func (r *HashRelation) append(f Fact) int32 {
	ord := int32(len(r.facts))
	r.facts = append(r.facts, storedFact{fact: f})
	r.live++
	r.noteStats(f)
	if !r.Multiset {
		h := term.HashArgs(f.Args)
		r.dedup[h] = append(r.dedup[h], ord)
	}
	if f.NVars > 0 {
		r.nonground = append(r.nonground, ord)
	}
	for _, ix := range r.indexes {
		ix.insert(f, ord)
	}
	for _, ix := range r.patIndexes {
		ix.insert(f, ord)
	}
	return ord
}

// isDuplicate reports whether f is a variant of an existing live fact or
// subsumed by an existing non-ground fact.
// ContainsResolved reports whether the relation already holds a live
// ground fact equal to args as they would resolve under env, without
// materializing the resolved fact — the join loop's zero-allocation
// duplicate probe. A true result means Insert of the resolved fact would
// certainly be rejected as a duplicate. A false result promises nothing
// (unbound or constructed arguments, multiset semantics, and subsumption
// by non-ground facts all fall through) — callers must then take the
// ordinary materialize-and-Insert path.
func (r *HashRelation) ContainsResolved(args []term.Term, env *term.Env) bool {
	if r.Multiset {
		return false
	}
	h, ok := term.HashArgsResolved(args, env)
	if !ok {
		return false
	}
	for _, ord := range r.dedup[h] {
		sf := &r.facts[ord]
		if sf.dead || sf.fact.NVars != 0 {
			continue
		}
		if term.EqualArgsResolved(args, env, sf.fact.Args) {
			return true
		}
	}
	return false
}

func (r *HashRelation) isDuplicate(f Fact) bool {
	h := term.HashArgs(f.Args)
	for _, ord := range r.dedup[h] {
		sf := &r.facts[ord]
		if sf.dead {
			continue
		}
		if sf.fact.NVars == f.NVars && term.EqualArgs(sf.fact.Args, f.Args) {
			return true
		}
	}
	// Subsumption by a strictly more general stored fact.
	for _, ord := range r.nonground {
		sf := &r.facts[ord]
		if sf.dead {
			continue
		}
		if term.Subsumes(sf.fact.Args, sf.fact.NVars, f.Args) {
			return true
		}
	}
	return false
}

// DuplicateWithin reports whether f is a variant of — or subsumed by — a
// live fact with ordinal below to. It performs the same checks as Insert's
// duplicate elimination, restricted to the Mark-bounded prefix, and never
// mutates the relation: under the single-writer contract (see the type
// comment) the parallel round's workers call it concurrently to discard
// rederivations of round-start facts before the merge barrier. A false
// result is not a promise of admission — the merge writer still runs the
// full check against facts inserted after to.
func (r *HashRelation) DuplicateWithin(f Fact, to Mark) bool {
	h := term.HashArgs(f.Args)
	for _, ord := range r.dedup[h] {
		if ord >= int32(to) {
			break // postings are ordinal-sorted
		}
		sf := &r.facts[ord]
		if sf.dead {
			continue
		}
		if sf.fact.NVars == f.NVars && term.EqualArgs(sf.fact.Args, f.Args) {
			return true
		}
	}
	for _, ord := range r.nonground {
		if ord >= int32(to) {
			break
		}
		sf := &r.facts[ord]
		if sf.dead {
			continue
		}
		if term.Subsumes(sf.fact.Args, sf.fact.NVars, f.Args) {
			return true
		}
	}
	return false
}

// Delete implements Deleter: every live fact unifying with pattern under
// env is removed.
func (r *HashRelation) Delete(pattern []term.Term, env *term.Env) int {
	// Canonicalize the pattern so its variables are densely numbered (the
	// public API may pass parser-style unnumbered variables).
	pat, nvars := term.ResolveArgs(pattern, env)
	var tr term.Trail
	removed := 0
	penv := term.NewEnv(nvars)
	for ord := range r.facts {
		sf := &r.facts[ord]
		if sf.dead {
			continue
		}
		fenv := term.NewEnv(sf.fact.NVars)
		m := tr.Mark()
		ok := term.UnifyArgs(pat, penv, sf.fact.Args, fenv, &tr)
		tr.Undo(m)
		if ok {
			r.deleteOrd(int32(ord))
			removed++
		}
	}
	return removed
}

func (r *HashRelation) deleteOrd(ord int32) {
	sf := &r.facts[ord]
	if sf.dead {
		return
	}
	sf.dead = true
	r.live--
	r.mutations++
	// dedup postings and index postings keep the ordinal until enough
	// tombstones accumulate; iterators skip dead facts either way. Heavy
	// @aggregate_selection churn would otherwise leave lookups scanning
	// mostly-dead buckets forever.
	r.maybeCompact()
}

// maybeCompact drops dead ordinals from the posting lists once the
// tombstones added since the previous compaction outnumber both
// compactMinDead and the live facts (so at least half of all postings are
// provably dead). The trigger counts tombstones since the last compaction —
// not the total — because the facts slice is never rewritten and the
// all-time dead ratio therefore never drops.
func (r *HashRelation) maybeCompact() {
	dead := len(r.facts) - r.live
	newDead := dead - r.deadAtCompact
	if newDead < compactMinDead || newDead < r.live {
		return
	}
	r.compactPostings()
	r.deadAtCompact = dead
}

// compactPostings removes dead ordinals from every posting list: the dedup
// map, the non-ground list, and the argument- and pattern-form indexes.
// The facts slice itself is untouched (ordinals must stay stable for
// Marks). Replacement lists are freshly allocated rather than filtered in
// place: an in-flight iterator holds the old slice header and must keep a
// consistent view.
func (r *HashRelation) compactPostings() {
	for h, l := range r.dedup {
		if nl := r.liveOnly(l); len(nl) == 0 {
			delete(r.dedup, h)
		} else {
			r.dedup[h] = nl
		}
	}
	r.nonground = r.liveOnly(r.nonground)
	for _, ix := range r.indexes {
		for h, l := range ix.buckets {
			if nl := r.liveOnly(l); len(nl) == 0 {
				delete(ix.buckets, h)
			} else {
				ix.buckets[h] = nl
			}
		}
		ix.varBucket = r.liveOnly(ix.varBucket)
	}
	for _, ix := range r.patIndexes {
		for h, l := range ix.buckets {
			if nl := r.liveOnly(l); len(nl) == 0 {
				delete(ix.buckets, h)
			} else {
				ix.buckets[h] = nl
			}
		}
		ix.overflow = r.liveOnly(ix.overflow)
	}
}

// liveOnly returns a newly allocated copy of l without dead ordinals
// (nil when none survive).
func (r *HashRelation) liveOnly(l []int32) []int32 {
	var nl []int32
	for _, ord := range l {
		if !r.facts[ord].dead {
			nl = append(nl, ord)
		}
	}
	return nl
}

// TruncateTo rolls the relation back to a previous Snapshot: every fact
// with ordinal >= mark is removed as if never inserted. The engine uses it
// to make an aborted fixpoint round atomic (DESIGN.md §5.11).
//
// All derived structures are restored to a consistent state: dedup,
// non-ground and index postings are cut back so nothing points at a
// rolled-back ordinal (postings are ordinal-sorted, so the cut is a binary
// search per list); the per-column distinct sketches are rebuilt from the
// surviving facts (linear counting cannot forget); the compaction trigger
// is re-clamped so posting compaction keeps firing at the intended churn
// threshold; and aggregate-selection group state is rebuilt so no group
// holds a rolled-back ordinal.
//
// Two contractual limits. First, TruncateTo rolls back insertions, not
// deletions: a fact below mark that was tombstoned (Delete, or displaced by
// an aggregate selection) stays dead — callers that need delete-exact
// rollback must not use TruncateTo on relations with aggregate selections
// (the engine invalidates those evaluations wholesale instead). Second,
// unlike appends and posting compaction, truncation invalidates iterators
// whose range extends past mark; the single-writer contract's writer must
// only truncate marks no live reader has been handed.
func (r *HashRelation) TruncateTo(mark Mark) {
	m := int(mark)
	if m < 0 {
		m = 0
	}
	if m >= len(r.facts) {
		return
	}
	r.mutations++
	removed := 0
	for ord := m; ord < len(r.facts); ord++ {
		if !r.facts[ord].dead {
			r.live--
		}
		removed++
	}
	r.facts = r.facts[:m]
	if r.inserted > removed {
		r.inserted -= removed
	} else {
		r.inserted = 0
	}
	limit := int32(m)
	cut := func(l []int32) []int32 { return l[:lowerBound(l, limit)] }
	for h, l := range r.dedup {
		if nl := cut(l); len(nl) == 0 {
			delete(r.dedup, h)
		} else {
			r.dedup[h] = nl
		}
	}
	r.nonground = cut(r.nonground)
	for _, ix := range r.indexes {
		for h, l := range ix.buckets {
			if nl := cut(l); len(nl) == 0 {
				delete(ix.buckets, h)
			} else {
				ix.buckets[h] = nl
			}
		}
		ix.varBucket = cut(ix.varBucket)
	}
	for _, ix := range r.patIndexes {
		for h, l := range ix.buckets {
			if nl := cut(l); len(nl) == 0 {
				delete(ix.buckets, h)
			} else {
				ix.buckets[h] = nl
			}
		}
		ix.overflow = cut(ix.overflow)
	}
	// Truncation can only shrink the tombstone count; clamp the compaction
	// baseline so maybeCompact's "tombstones since last compaction" stays
	// non-negative and the next churn still triggers on schedule.
	if dead := len(r.facts) - r.live; r.deadAtCompact > dead {
		r.deadAtCompact = dead
	}
	// Linear-counting sketches cannot remove values; rebuild them from the
	// surviving live facts so the planner's estimates track reality.
	for i := range r.colSketch {
		r.colSketch[i].reset()
	}
	for ord := range r.facts {
		if !r.facts[ord].dead {
			r.noteStats(r.facts[ord].fact)
		}
	}
	for _, s := range r.aggSels {
		s.truncate(r, limit)
	}
}

// Mutations returns the destructive-change counter: it advances on every
// delete, truncation, or clear, and never on appends. Equal counters before
// and after mean every ordinal below an unchanged Snapshot still holds the
// same live fact.
func (r *HashRelation) Mutations() int { return r.mutations }

// NonGroundWithin reports whether any fact with ordinal in [from, to) was
// inserted non-ground. The answer may be conservatively true for a
// tombstoned non-ground fact whose posting has not been compacted yet.
func (r *HashRelation) NonGroundWithin(from, to Mark) bool {
	i := lowerBound(r.nonground, int32(from))
	return i < len(r.nonground) && r.nonground[i] < int32(to)
}

// Clear removes all facts but keeps index definitions.
func (r *HashRelation) Clear() {
	r.mutations++
	r.facts = nil
	r.live = 0
	r.dedup = make(map[uint64][]int32)
	r.nonground = nil
	r.inserted = 0
	r.deadAtCompact = 0
	for i := range r.colSketch {
		r.colSketch[i].reset()
	}
	for _, ix := range r.indexes {
		ix.clear()
	}
	for _, ix := range r.patIndexes {
		ix.clear()
	}
	for _, s := range r.aggSels {
		s.clear()
	}
}

// Snapshot implements Relation.
func (r *HashRelation) Snapshot() Mark { return Mark(len(r.facts)) }

// Scan implements Relation.
func (r *HashRelation) Scan() Iterator { return r.ScanRange(0, r.Snapshot()) }

// ScanRange implements Relation.
func (r *HashRelation) ScanRange(from, to Mark) Iterator {
	return &rangeIter{rel: r, pos: int(from), to: int(to)}
}

type rangeIter struct {
	rel *HashRelation
	pos int
	to  int
}

func (it *rangeIter) Next() (Fact, bool) {
	for it.pos < it.to {
		sf := &it.rel.facts[it.pos]
		it.pos++
		if !sf.dead {
			return sf.fact, true
		}
	}
	return Fact{}, false
}

// Lookup implements Relation.
func (r *HashRelation) Lookup(pattern []term.Term, env *term.Env) Iterator {
	return r.LookupRange(pattern, env, 0, r.Snapshot())
}

// LookupRange implements Relation: it picks the most selective usable index
// for the pattern; with no usable index it degrades to a range scan.
func (r *HashRelation) LookupRange(pattern []term.Term, env *term.Env, from, to Mark) Iterator {
	if best := r.chooseArgIndex(pattern, env); best != nil {
		if it, ok := best.lookup(pattern, env, int32(from), int32(to)); ok {
			return it
		}
	}
	for _, ix := range r.patIndexes {
		if it, ok := ix.lookup(pattern, env, int32(from), int32(to)); ok {
			return it
		}
	}
	return r.ScanRange(from, to)
}

// chooseArgIndex returns the argument-form index with the largest number of
// positions that are all bound (ground) in the pattern under env.
func (r *HashRelation) chooseArgIndex(pattern []term.Term, env *term.Env) *argIndex {
	var best *argIndex
	for _, ix := range r.indexes {
		if !ix.usable(pattern, env) {
			continue
		}
		if best == nil || len(ix.positions) > len(best.positions) {
			best = ix
		}
	}
	return best
}

// ordIter iterates a sorted ordinal posting list restricted to [from, to).
type ordIter struct {
	rel   *HashRelation
	lists [][]int32 // each ordinal-sorted; merged lazily
	pos   []int
	from  int32
	to    int32
}

func newOrdIter(rel *HashRelation, from, to int32, lists ...[]int32) *ordIter {
	it := &ordIter{rel: rel, lists: lists, pos: make([]int, len(lists)), from: from, to: to}
	for i, l := range lists {
		it.pos[i] = lowerBound(l, from)
	}
	return it
}

// lowerBound returns the first index in sorted l with l[i] >= v.
func lowerBound(l []int32, v int32) int {
	lo, hi := 0, len(l)
	for lo < hi {
		mid := (lo + hi) / 2
		if l[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func (it *ordIter) Next() (Fact, bool) {
	for {
		// Pick the smallest next ordinal across lists (usually 1-2 lists).
		bestList, bestOrd := -1, int32(0)
		for i, l := range it.lists {
			p := it.pos[i]
			if p >= len(l) || l[p] >= it.to {
				continue
			}
			if bestList == -1 || l[p] < bestOrd {
				bestList, bestOrd = i, l[p]
			}
		}
		if bestList == -1 {
			return Fact{}, false
		}
		it.pos[bestList]++
		sf := &it.rel.facts[bestOrd]
		if !sf.dead {
			return sf.fact, true
		}
	}
}
