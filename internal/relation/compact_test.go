package relation

import (
	"strings"
	"testing"

	"coral/internal/term"
)

func postingCount(lists ...[]int32) int {
	n := 0
	for _, l := range lists {
		n += len(l)
	}
	return n
}

func (r *HashRelation) argIndexPostings(i int) int {
	n := len(r.indexes[i].varBucket)
	for _, l := range r.indexes[i].buckets {
		n += len(l)
	}
	return n
}

func (r *HashRelation) dedupPostings() int {
	n := 0
	for _, l := range r.dedup {
		n += len(l)
	}
	return n
}

// TestPostingCompaction pins the dead-postings bugfix: tombstoned ordinals
// used to stay in every posting list forever, so heavy churn left lookups
// scanning mostly-dead buckets. Once the dead-since-last-compaction count
// crosses the threshold, buckets must shrink to the live facts.
func TestPostingCompaction(t *testing.T) {
	defer func(old int) { compactMinDead = old }(compactMinDead)
	compactMinDead = 8

	r := NewHashRelation("p", 2)
	if err := r.MakeIndex(0); err != nil {
		t.Fatal(err)
	}
	if err := r.MakePatternIndex([]term.Term{term.NewVar("A"), term.NewVar("B")}, []string{"A"}); err != nil {
		t.Fatal(err)
	}
	const n = 100
	for i := 0; i < n; i++ {
		// All facts share the indexed first argument: one hot bucket.
		r.Insert(GroundFact(term.Int(0), term.Int(int64(i))))
	}
	if got := r.argIndexPostings(0); got != n {
		t.Fatalf("postings before delete = %d, want %d", got, n)
	}

	// Keep a pre-deletion iterator alive across the compaction: it holds
	// the old posting slices and must stay consistent.
	live := r.Lookup([]term.Term{term.Int(0), term.NewVar("X")}, nil)

	pat := []term.Term{term.Int(0), term.NewVar("X")}
	env := term.NewEnv(1)
	deleted := 0
	for i := 0; i < n; i++ {
		if i%10 == 0 {
			continue // survivors
		}
		del := r.Delete([]term.Term{term.Int(0), term.Int(int64(i))}, nil)
		deleted += del
	}
	if deleted != n-n/10 {
		t.Fatalf("deleted %d facts, want %d", deleted, n-n/10)
	}

	// Tombstones added after the last compaction may linger (they are below
	// the threshold by definition), so the bound is live + compactMinDead —
	// far below the n postings that used to accumulate forever.
	bound := r.live + compactMinDead
	if got := r.argIndexPostings(0); got > bound {
		t.Errorf("argIndex postings after churn = %d, want <= %d", got, bound)
	}
	if got := r.dedupPostings(); got > bound {
		t.Errorf("dedup postings after churn = %d, want <= %d", got, bound)
	}
	if got := postingCount(r.patIndexes[0].overflow) + func() int {
		n := 0
		for _, l := range r.patIndexes[0].buckets {
			n += len(l)
		}
		return n
	}(); got > bound {
		t.Errorf("pattern-index postings after churn = %d, want <= %d", got, bound)
	}

	// Fresh lookups and the pre-compaction iterator both see the survivors.
	count := 0
	for it := r.Lookup(pat, env); ; count++ {
		if _, ok := it.Next(); !ok {
			break
		}
	}
	if count != r.live {
		t.Errorf("post-compaction lookup yields %d facts, want %d", count, r.live)
	}
	oldCount := 0
	for {
		if _, ok := live.Next(); !ok {
			break
		}
		oldCount++
	}
	if oldCount != r.live {
		t.Errorf("pre-compaction iterator yields %d facts, want %d", oldCount, r.live)
	}
}

// TestCompactionNotRetriggeredWithoutNewDeletes guards the threshold
// design: the facts slice is never rewritten, so the all-time dead ratio
// stays high after a compaction — the trigger must count tombstones since
// the last compaction, not overall.
func TestCompactionNotRetriggeredWithoutNewDeletes(t *testing.T) {
	defer func(old int) { compactMinDead = old }(compactMinDead)
	compactMinDead = 4

	r := NewHashRelation("p", 1)
	for i := 0; i < 32; i++ {
		r.Insert(GroundFact(term.Int(int64(i))))
	}
	for i := 0; i < 28; i++ {
		r.Delete([]term.Term{term.Int(int64(i))}, nil)
	}
	if r.deadAtCompact == 0 {
		t.Fatal("compaction never triggered")
	}
	mark := r.deadAtCompact
	// Inserts without deletes must not re-trigger.
	for i := 100; i < 140; i++ {
		r.Insert(GroundFact(term.Int(int64(i))))
	}
	if r.deadAtCompact != mark {
		t.Errorf("compaction re-triggered without new tombstones")
	}
}

// TestMakeIndexErrors pins the panic-to-error change for out-of-range
// index positions (and the pattern-index analogues).
func TestMakeIndexErrors(t *testing.T) {
	r := NewHashRelation("p", 2)
	for _, pos := range []int{-1, 2, 7} {
		err := r.MakeIndex(pos)
		if err == nil {
			t.Fatalf("MakeIndex(%d) on p/2 succeeded", pos)
		}
		if !strings.Contains(err.Error(), "out of range") {
			t.Errorf("MakeIndex(%d) error = %q", pos, err)
		}
	}
	if len(r.indexes) != 0 {
		t.Fatalf("failed MakeIndex left %d indexes behind", len(r.indexes))
	}
	if err := r.MakeIndex(0, 1); err != nil {
		t.Fatalf("valid MakeIndex: %v", err)
	}

	if err := r.MakePatternIndex([]term.Term{term.NewVar("A")}, []string{"A"}); err == nil {
		t.Error("arity-1 pattern on p/2 accepted")
	}
	if err := r.MakePatternIndex([]term.Term{term.NewVar("A"), term.NewVar("B")}, []string{"Z"}); err == nil {
		t.Error("unknown key variable accepted")
	}
	if len(r.patIndexes) != 0 {
		t.Fatalf("failed MakePatternIndex left %d indexes behind", len(r.patIndexes))
	}
	if err := r.MakePatternIndex([]term.Term{term.NewVar("A"), term.NewVar("B")}, []string{"A"}); err != nil {
		t.Fatalf("valid MakePatternIndex: %v", err)
	}
}
