package repl

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	coral "coral"
)

func session(t *testing.T) *Session {
	t.Helper()
	return NewSession(coral.New())
}

func TestFactThenQuery(t *testing.T) {
	s := session(t)
	out, done := s.Execute("edge(a, b).")
	if done || !strings.Contains(out, "asserted") {
		t.Fatalf("assert: %q %v", out, done)
	}
	s.Execute("edge(b, c).")
	out, _ = s.Execute("edge(X, Y).")
	if !strings.Contains(out, "X = a, Y = b") || !strings.Contains(out, "2 answer(s)") {
		t.Fatalf("query: %q", out)
	}
}

func TestModuleDefinitionInline(t *testing.T) {
	s := session(t)
	s.Execute("edge(1, 2).")
	s.Execute("edge(2, 3).")
	out, _ := s.Execute(`module m.
export tc(bf).
tc(X, Y) :- edge(X, Y).
tc(X, Y) :- edge(X, Z), tc(Z, Y).
end_module.`)
	if strings.Contains(out, "error") {
		t.Fatalf("module: %q", out)
	}
	out, _ = s.Execute("tc(1, Y).")
	if !strings.Contains(out, "2 answer(s)") {
		t.Fatalf("tc query: %q", out)
	}
	// The rewritten program is inspectable.
	out, _ = s.Execute(`rewritten(m, tc, "bf").`)
	if !strings.Contains(out, "m_tc_bf") {
		t.Fatalf("rewritten: %q", out)
	}
	// And explainable.
	out, _ = s.Execute("explain(tc(1, 3)).")
	if !strings.Contains(out, "base fact") {
		t.Fatalf("explain: %q", out)
	}
}

func TestMultiLineClause(t *testing.T) {
	s := session(t)
	out, done, more := s.Feed("f(1,")
	if out != "" || done || !more {
		t.Fatalf("continuation: %q %v %v", out, done, more)
	}
	out, done, more = s.Feed("2).")
	if done || more || !strings.Contains(out, "asserted") {
		t.Fatalf("completion: %q %v %v", out, done, more)
	}
	out, _ = s.Execute("f(X, Y).")
	if !strings.Contains(out, "1 answer(s)") {
		t.Fatalf("query: %q", out)
	}
}

func TestConsultCommand(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.crl")
	os.WriteFile(path, []byte("g(7).\n?- g(X).\n"), 0o644)
	s := session(t)
	out, _ := s.Execute(`consult("` + path + `").`)
	if !strings.Contains(out, "X = 7") {
		t.Fatalf("consult output: %q", out)
	}
	out, _ = s.Execute(`consult("/does/not/exist").`)
	if !strings.Contains(out, "error") {
		t.Fatalf("missing file: %q", out)
	}
}

func TestHaltHelpAndErrors(t *testing.T) {
	s := session(t)
	if _, done := s.Execute("halt."); !done {
		t.Error("halt did not end the session")
	}
	out, done := s.Execute("help.")
	if done || !strings.Contains(out, "consult") {
		t.Errorf("help: %q", out)
	}
	out, _ = s.Execute("p(X :-.")
	if !strings.Contains(out, "error") {
		t.Errorf("garbage accepted: %q", out)
	}
	out, _ = s.Execute("nosuchquery(X).")
	// Unknown predicates auto-define as empty: the query answers "no".
	if !strings.Contains(out, "no") {
		t.Errorf("unknown predicate: %q", out)
	}
	out, _ = s.Execute("rewritten(only_two, args).")
	if !strings.Contains(out, "usage") {
		t.Errorf("bad rewritten args: %q", out)
	}
}

func TestBlankAndGroundQueries(t *testing.T) {
	s := session(t)
	if out, done, more := s.Feed(""); out != "" || done || more {
		t.Error("blank line mishandled")
	}
	s.Execute("h(1).")
	out, _ := s.Execute("h(1).")
	// Re-entering an existing fact answers yes (it is already true).
	if !strings.Contains(out, "yes") {
		t.Errorf("ground query: %q", out)
	}
	// A bare new ground literal asserts; an explicit ?- query never does.
	out, _ = s.Execute("?- h(9).")
	if !strings.Contains(out, "no") {
		t.Errorf("explicit ground query: %q", out)
	}
	out, _ = s.Execute("h(9).")
	if !strings.Contains(out, "asserted") {
		t.Errorf("bare literal should assert: %q", out)
	}
	out, _ = s.Execute("?- h(9).")
	if !strings.Contains(out, "yes") {
		t.Errorf("after assert: %q", out)
	}
}

func TestSaveCommand(t *testing.T) {
	s := session(t)
	s.Execute("edge(a, b).")
	s.Execute("edge(b, c).")
	path := filepath.Join(t.TempDir(), "edges.crl")
	out, _ := s.Execute(fmt.Sprintf("save(%q, edge/2).", path))
	if !strings.Contains(out, "saved") {
		t.Fatalf("save: %q", out)
	}
	data, err := os.ReadFile(path)
	if err != nil || !strings.Contains(string(data), "edge(a, b).") {
		t.Fatalf("saved file: %q %v", data, err)
	}
	out, _ = s.Execute(`save("x").`)
	if !strings.Contains(out, "usage") {
		t.Errorf("bad save args: %q", out)
	}
	out, _ = s.Execute(fmt.Sprintf("save(%q, nosuch/9).", path))
	if !strings.Contains(out, "error") {
		t.Errorf("unknown relation save: %q", out)
	}
	out, _ = s.Execute(fmt.Sprintf("save(%q, edge/x).", path))
	if !strings.Contains(out, "error") {
		t.Errorf("bad arity save: %q", out)
	}
}

func TestVetCommand(t *testing.T) {
	s := session(t)
	path := filepath.Join(t.TempDir(), "bad.crl")
	src := `module bad.
export win(f).
win(X) :- move(X, Y), not win(Y).
move(a, b).
end_module.
`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out, done := s.Execute(fmt.Sprintf(":vet %q.", path))
	if done {
		t.Fatal(":vet ended the session")
	}
	if !strings.Contains(out, "error [unstratified]") || !strings.Contains(out, "3:23:") {
		t.Fatalf("vet output: %q", out)
	}

	// A clean file reports no diagnostics.
	clean := filepath.Join(t.TempDir(), "ok.crl")
	cleanSrc := `edge(a, b).
module paths.
export path(bf).
path(X, Y) :- edge(X, Y).
path(X, Y) :- edge(X, Z), path(Z, Y).
end_module.
`
	if err := os.WriteFile(clean, []byte(cleanSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	out, _ = s.Execute(fmt.Sprintf(":vet %q.", clean))
	if !strings.Contains(out, "clean") {
		t.Fatalf("clean vet output: %q", out)
	}

	// Predicates already loaded in the session count as defined: a file
	// referencing flight/2 is clean once the fact exists.
	s.Execute("flight(msn, ord).")
	reach := filepath.Join(t.TempDir(), "reach.crl")
	reachSrc := `module r.
export reach(bf).
reach(X, Y) :- flight(X, Y).
reach(X, Y) :- reach(X, Z), flight(Z, Y).
end_module.
`
	if err := os.WriteFile(reach, []byte(reachSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	out, _ = s.Execute(fmt.Sprintf(":vet %q.", reach))
	if !strings.Contains(out, "clean") {
		t.Fatalf("vet against session relations: %q", out)
	}

	out, _ = s.Execute(":vet.")
	if !strings.Contains(out, "usage") {
		t.Fatalf("bare :vet: %q", out)
	}
}

func TestBudgetCommand(t *testing.T) {
	s := session(t)
	out, _ := s.Execute(":budget.")
	if out != "budget: unlimited.\n" {
		t.Fatalf("initial: %q", out)
	}
	out, _ = s.Execute(":budget timeout=2s facts=100 iters=7.")
	if out != "budget: timeout=2s facts=100 iters=7\n" {
		t.Fatalf("set: %q", out)
	}
	b := s.Sys.Budget()
	if b.Timeout.String() != "2s" || b.MaxFacts != 100 || b.MaxIterations != 7 {
		t.Fatalf("budget not applied: %+v", b)
	}
	out, _ = s.Execute(":budget.")
	if out != "budget: timeout=2s facts=100 iters=7\n" {
		t.Fatalf("show: %q", out)
	}
	// A budgeted runaway query aborts with an error instead of hanging,
	// and the session keeps answering afterwards.
	s.Execute(":budget iters=5.")
	s.Execute("num(0).")
	s.Execute(`module n.
export up(f).
@rewrite none.
up(X) :- num(X).
up(Y) :- up(X), Y = X + 1.
end_module.`)
	out, _ = s.Execute("up(X).")
	if !strings.Contains(out, "error") || !strings.Contains(out, "iteration") {
		t.Fatalf("runaway query under budget: %q", out)
	}
	out, _ = s.Execute(":budget off.")
	if out != "budget cleared.\n" {
		t.Fatalf("clear: %q", out)
	}
	if b := s.Sys.Budget(); b != (coral.Budget{}) {
		t.Fatalf("budget not cleared: %+v", b)
	}
	out, _ = s.Execute("num(X).")
	if !strings.Contains(out, "X = 0") {
		t.Fatalf("follow-up query after abort: %q", out)
	}
	// Errors: bad token, bad value, unknown key.
	for _, bad := range []string{":budget 2s.", ":budget timeout=nope.", ":budget fuel=3."} {
		if out, _ := s.Execute(bad); !strings.Contains(out, "error") {
			t.Fatalf("%s: want error, got %q", bad, out)
		}
	}
}

func TestAnalyzeCommand(t *testing.T) {
	s := session(t)
	path := filepath.Join(t.TempDir(), "paths.crl")
	src := `edge(a, b).
module paths.
export path(bf).
path(X, Y) :- edge(X, Y).
path(X, Y) :- edge(X, Z), path(Z, Y).
end_module.
`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out, done := s.Execute(fmt.Sprintf(":analyze %q.", path))
	if done {
		t.Fatal(":analyze ended the session")
	}
	if !strings.Contains(out, "flow analysis: module paths") ||
		!strings.Contains(out, "path_bf") ||
		!strings.Contains(out, "call=(g,f)") {
		t.Fatalf("analyze output: %q", out)
	}

	out, _ = s.Execute(":analyze.")
	if !strings.Contains(out, "usage") {
		t.Fatalf("bare :analyze: %q", out)
	}

	out, _ = s.Execute(fmt.Sprintf(":analyze %q.", filepath.Join(t.TempDir(), "missing.crl")))
	if !strings.Contains(out, "error") {
		t.Fatalf("missing file: %q", out)
	}
}

func TestDisasmCommand(t *testing.T) {
	s := session(t)
	path := filepath.Join(t.TempDir(), "paths.crl")
	src := `module paths.
export path(bf).
path(X, Y) :- edge(X, Y).
path(X, Y) :- edge(X, Z), path(Z, Y).
end_module.
`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out, done := s.Execute(fmt.Sprintf(":disasm %q.", path))
	if done {
		t.Fatal(":disasm ended the session")
	}
	if !strings.Contains(out, "query form path(bf)") ||
		!strings.Contains(out, "arg.store") ||
		!strings.Contains(out, "m_path_bf") {
		t.Fatalf("disasm output: %q", out)
	}

	out, _ = s.Execute(":disasm.")
	if !strings.Contains(out, "usage") {
		t.Fatalf("bare :disasm: %q", out)
	}

	out, _ = s.Execute(fmt.Sprintf(":disasm %q.", filepath.Join(t.TempDir(), "missing.crl")))
	if !strings.Contains(out, "error") {
		t.Fatalf("missing file: %q", out)
	}
}
