// Package repl implements the interactive interface's command processing
// (paper §2): consulting files, running queries, asserting facts, and
// inspecting the optimizer's output. cmd/coral wires it to stdin/stdout.
package repl

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	coral "coral"
)

// HelpText lists the interactive commands.
const HelpText = `Commands (all end with a period):
  consult("file").          load a program file (facts, modules, queries)
  p(a, X).                  run a query against base relations and exports
  fact(a, b).               assert a base fact
  explain(p(a, c)).         show a derivation proof tree for each answer
  rewritten(mod, p, "bf").  show the optimizer's rewritten program
  save("file", pred/2).     write a base relation as a consultable file
  :vet "file".              run static analysis over a program file without loading it
  :analyze "file".          print the static analyses of a program file (flow: bindings,
                            groundness, types; cardinality: row bounds, termination verdicts)
  :disasm "file".           print the register bytecode each rewritten rule body of a
                            program file compiles to (with interpreter-fallback reasons)
  :budget timeout=2s facts=100000 iters=1000.
                            bound every evaluation; ":budget off." clears,
                            bare ":budget." shows the current limits
  help.                     this text
  halt.                     exit`

// Session holds REPL state: the system plus a pending multi-line clause.
type Session struct {
	Sys     *coral.System
	pending strings.Builder
}

// NewSession wraps a system.
func NewSession(sys *coral.System) *Session { return &Session{Sys: sys} }

// Feed consumes one input line. It returns the output to print, whether
// the session should end, and whether more lines are needed to complete
// the current clause (the caller shows a continuation prompt).
func (s *Session) Feed(line string) (output string, done, needMore bool) {
	s.pending.WriteString(line)
	s.pending.WriteByte('\n')
	text := strings.TrimSpace(s.pending.String())
	if text == "" {
		s.pending.Reset()
		return "", false, false
	}
	if !strings.HasSuffix(text, ".") {
		return "", false, true
	}
	s.pending.Reset()
	out, quit := s.Execute(text)
	return out, quit, false
}

// Execute runs one period-terminated input and returns its output; done
// reports a halt command.
func (s *Session) Execute(text string) (output string, done bool) {
	body := strings.TrimSuffix(strings.TrimSpace(text), ".")
	switch strings.TrimSpace(body) {
	case "halt", "quit", "exit":
		return "", true
	case "help":
		return HelpText + "\n", false
	}
	if rest, ok := strings.CutPrefix(strings.TrimSpace(body), ":vet"); ok {
		return s.vet(rest), false
	}
	if rest, ok := strings.CutPrefix(strings.TrimSpace(body), ":analyze"); ok {
		return s.analyze(rest), false
	}
	if rest, ok := strings.CutPrefix(strings.TrimSpace(body), ":disasm"); ok {
		return s.disasm(rest), false
	}
	if rest, ok := strings.CutPrefix(strings.TrimSpace(body), ":budget"); ok {
		return s.budget(rest), false
	}
	if arg, ok := command(body, "consult"); ok {
		results, err := s.Sys.ConsultFile(strings.Trim(strings.TrimSpace(arg), `"'`))
		out := renderResults(results)
		if err != nil {
			out += "error: " + err.Error() + "\n"
		}
		return out, false
	}
	if arg, ok := command(body, "save"); ok {
		parts := strings.SplitN(arg, ",", 2)
		if len(parts) != 2 {
			return "error: usage save(\"file\", pred/arity).\n", false
		}
		spec := strings.TrimSpace(parts[1])
		slash := strings.LastIndex(spec, "/")
		if slash < 0 {
			return "error: usage save(\"file\", pred/arity).\n", false
		}
		arity := 0
		for _, c := range spec[slash+1:] {
			if c < '0' || c > '9' {
				return "error: bad arity in " + spec + "\n", false
			}
			arity = arity*10 + int(c-'0')
		}
		path := strings.Trim(strings.TrimSpace(parts[0]), `"'`)
		if err := s.Sys.SaveRelation(path, spec[:slash], arity); err != nil {
			return "error: " + err.Error() + "\n", false
		}
		return fmt.Sprintf("saved %s to %s\n", spec, path), false
	}
	if arg, ok := command(body, "explain"); ok {
		out, err := s.Sys.Explain(arg)
		if err != nil {
			return "error: " + err.Error() + "\n", false
		}
		return out, false
	}
	if arg, ok := command(body, "rewritten"); ok {
		parts := strings.Split(arg, ",")
		if len(parts) != 3 {
			return "error: usage rewritten(module, pred, \"form\").\n", false
		}
		out, err := s.Sys.RewrittenProgram(
			strings.TrimSpace(parts[0]),
			strings.TrimSpace(parts[1]),
			strings.Trim(strings.TrimSpace(parts[2]), `"'`))
		if err != nil {
			return "error: " + err.Error() + "\n", false
		}
		return out, false
	}
	// Module definitions and rules are program text.
	if strings.Contains(text, ":-") || strings.HasPrefix(strings.TrimSpace(text), "module ") {
		results, err := s.Sys.Consult(text)
		out := renderResults(results)
		if err != nil {
			out += "error: " + err.Error() + "\n"
		}
		return out, false
	}
	// Otherwise run as a query. A ground single-literal input with no
	// answers is taken as a fact assertion (the interactive convention:
	// "edge(a, b)." adds the fact; re-entering it then answers yes).
	ans, err := s.Sys.Query(body)
	if err == nil {
		if len(ans.Tuples) == 0 && len(ans.Vars) == 0 && s.assertable(text) {
			if _, cerr := s.Sys.Consult(text); cerr == nil {
				return "asserted.\n", false
			}
		}
		return RenderAnswers(ans), false
	}
	return "error: " + err.Error() + "\n", false
}

// vet runs the static analysis pass over a program file without loading
// it. Predicates already known to the running system count as defined.
func (s *Session) vet(arg string) string {
	arg = strings.Trim(strings.TrimSpace(arg), `"'`)
	if arg == "" {
		return "usage: :vet \"file.crl\".\n"
	}
	diags, err := s.Sys.VetFile(arg)
	if err != nil {
		return "error: " + err.Error() + "\n"
	}
	if len(diags) == 0 {
		return "clean: no diagnostics.\n"
	}
	var b strings.Builder
	for _, d := range diags {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// analyze prints the whole-program static analyses of a program file: the
// flow analysis (reachable (predicate, adornment) contexts with inferred
// call bindings, fact groundness, and type/shape summaries) followed by
// the cardinality & termination analysis (row and domain bounds,
// termination verdicts, the static fixpoint round bound).
func (s *Session) analyze(arg string) string {
	arg = strings.Trim(strings.TrimSpace(arg), `"'`)
	if arg == "" {
		return "usage: :analyze \"file.crl\".\n"
	}
	out, err := s.Sys.AnalyzeFile(arg)
	if err != nil {
		return "error: " + err.Error() + "\n"
	}
	return out
}

// disasm prints the register bytecode each rewritten rule body of a
// program file compiles to — the adornment-specialized programs the
// evaluator runs when bytecode is on — without loading the file. Rules
// outside the compiled fragment print their interpreter-fallback reason.
func (s *Session) disasm(arg string) string {
	arg = strings.Trim(strings.TrimSpace(arg), `"'`)
	if arg == "" {
		return "usage: :disasm \"file.crl\".\n"
	}
	out, err := s.Sys.DisasmFile(arg)
	if err != nil {
		return "error: " + err.Error() + "\n"
	}
	return out
}

// budget sets, clears or shows the evaluation budget. Accepted forms:
//
//	:budget.                                   show current limits
//	:budget off.                               clear all limits
//	:budget timeout=2s facts=100000 iters=50.  set any subset (replaces all)
func (s *Session) budget(arg string) string {
	arg = strings.TrimSpace(arg)
	if arg == "" {
		return renderBudget(s.Sys.Budget())
	}
	if arg == "off" {
		s.Sys.SetBudget(coral.Budget{})
		return "budget cleared.\n"
	}
	var b coral.Budget
	for _, tok := range strings.Fields(arg) {
		key, val, ok := strings.Cut(tok, "=")
		if !ok {
			return fmt.Sprintf("error: bad budget setting %q (want key=value)\n%s", tok, budgetUsage)
		}
		switch key {
		case "timeout":
			d, err := time.ParseDuration(val)
			if err != nil || d <= 0 {
				return fmt.Sprintf("error: bad timeout %q (want a positive duration like 2s)\n", val)
			}
			b.Timeout = d
		case "facts":
			n, err := strconv.Atoi(val)
			if err != nil || n <= 0 {
				return fmt.Sprintf("error: bad facts limit %q (want a positive integer)\n", val)
			}
			b.MaxFacts = n
		case "iters":
			n, err := strconv.Atoi(val)
			if err != nil || n <= 0 {
				return fmt.Sprintf("error: bad iters limit %q (want a positive integer)\n", val)
			}
			b.MaxIterations = n
		default:
			return fmt.Sprintf("error: unknown budget key %q\n%s", key, budgetUsage)
		}
	}
	s.Sys.SetBudget(b)
	return renderBudget(b)
}

const budgetUsage = "usage: :budget timeout=2s facts=100000 iters=50.  (any subset; \":budget off.\" clears)\n"

func renderBudget(b coral.Budget) string {
	var parts []string
	if b.Timeout > 0 {
		parts = append(parts, "timeout="+b.Timeout.String())
	}
	if b.MaxFacts > 0 {
		parts = append(parts, fmt.Sprintf("facts=%d", b.MaxFacts))
	}
	if b.MaxIterations > 0 {
		parts = append(parts, fmt.Sprintf("iters=%d", b.MaxIterations))
	}
	if len(parts) == 0 {
		return "budget: unlimited.\n"
	}
	return "budget: " + strings.Join(parts, " ") + "\n"
}

// assertable reports whether the input is a single positive ground literal
// on a predicate not exported by a module — i.e. a base fact. Non-ground
// facts (universally quantified variables) must come through consult so a
// mistyped query cannot silently assert p(X).
func (s *Session) assertable(text string) bool {
	u, err := s.Sys.ParseUnit(text)
	if err != nil || len(u.Facts) != 1 || len(u.Modules) != 0 || len(u.Queries) != 0 {
		return false
	}
	f := u.Facts[0]
	for _, a := range f.Args {
		if !coral.IsGroundTerm(a) {
			return false
		}
	}
	return !s.Sys.IsExported(f.Pred, len(f.Args))
}

// command parses name(arg) inputs.
func command(body, name string) (string, bool) {
	b := strings.TrimSpace(body)
	if !strings.HasPrefix(b, name+"(") || !strings.HasSuffix(b, ")") {
		return "", false
	}
	return b[len(name)+1 : len(b)-1], true
}

func renderResults(results []*coral.Answers) string {
	var b strings.Builder
	for _, ans := range results {
		fmt.Fprintf(&b, "%% %s\n", ans.Query)
		b.WriteString(RenderAnswers(ans))
	}
	return b.String()
}

// RenderAnswers prints a query's answers in X = v form.
func RenderAnswers(ans *coral.Answers) string {
	if len(ans.Tuples) == 0 {
		return "no\n"
	}
	if len(ans.Vars) == 0 {
		return "yes\n"
	}
	var b strings.Builder
	for _, t := range ans.Tuples {
		parts := make([]string, len(ans.Vars))
		for i, v := range ans.Vars {
			parts[i] = fmt.Sprintf("%s = %s", v, t[i])
		}
		b.WriteString(strings.Join(parts, ", "))
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%% %d answer(s)\n", len(ans.Tuples))
	return b.String()
}
