// Package experiments implements the reproduction's evaluation harness.
// The SIGMOD'93 CORAL paper publishes no quantitative tables, so each
// experiment E01–E16 operationalizes one explicit performance claim from
// the text (see DESIGN.md §3); the harness regenerates one table per
// experiment, and EXPERIMENTS.md records claim-vs-measured.
package experiments

import (
	"fmt"
	"time"

	"coral/internal/ast"
	"coral/internal/engine"
	"coral/internal/parser"
	"coral/internal/relation"
	"coral/internal/term"
)

// Table is one experiment's output.
type Table struct {
	ID     string
	Title  string
	Claim  string // the paper statement the experiment tests
	Header []string
	Rows   [][]string
	Notes  string
}

// Scale shrinks experiment sizes for quick runs (1 = full table sizes used
// by cmd/coralbench; benchmarks use smaller configurations directly).
type Scale struct {
	Quick bool
}

// sizes picks between the full and quick size lists.
func (s Scale) sizes(full, quick []int) []int {
	if s.Quick {
		return quick
	}
	return full
}

// All runs every experiment.
func All(s Scale) []Table {
	return []Table{
		E01(s), E02(s), E03(s), E04(s), E05(s), E06(s), E07(s), E08(s),
		E09(s), E10(s), E11(s), E12(s), E13(s), E14(s), E15(s), E16(s),
	}
}

// Print renders a table as aligned text.
func (t Table) Print() string {
	out := fmt.Sprintf("== %s: %s ==\nClaim: %s\n", t.ID, t.Title, t.Claim)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		s := ""
		for i, c := range cells {
			s += fmt.Sprintf("%-*s  ", widths[i], c)
		}
		return s + "\n"
	}
	out += line(t.Header)
	for _, r := range t.Rows {
		out += line(r)
	}
	if t.Notes != "" {
		out += "Note: " + t.Notes + "\n"
	}
	return out
}

// mustSystem consults source text into an engine system.
func mustSystem(src string) *engine.System {
	u, err := parser.Parse(src)
	if err != nil {
		panic("experiments: " + err.Error())
	}
	sys := engine.NewSystem()
	for _, f := range u.Facts {
		rel, err := sys.BaseRelation(f.Pred, len(f.Args))
		if err != nil {
			panic("experiments: " + err.Error())
		}
		rel.Insert(relation.NewFact(f.Args, nil))
	}
	for _, m := range u.Modules {
		if err := sys.AddModule(m); err != nil {
			panic("experiments: " + err.Error())
		}
	}
	return sys
}

// measure times one call and collects the engine's counters.
func measure(sys *engine.System, pred string, args ...term.Term) (time.Duration, engine.RunStats) {
	key := ast.PredKey{Name: pred, Arity: len(args)}
	start := time.Now()
	stats, err := sys.MeasureCall(key, args)
	if err != nil {
		panic("experiments: " + err.Error())
	}
	return time.Since(start), stats
}

// v returns a fresh named variable.
func v(name string) term.Term { return term.NewVar(name) }

// w returns a fresh anonymous variable (existential position).
func w() term.Term { return term.NewVar("") }

func ms(d time.Duration) string {
	return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
}

func ratio(a, b time.Duration) string {
	if b == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1fx", float64(a)/float64(b))
}

func itoa(n int) string { return fmt.Sprintf("%d", n) }
