package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"coral/internal/ast"
	"coral/internal/engine"
	"coral/internal/parser"
	"coral/internal/relation"
	"coral/internal/storage"
	"coral/internal/term"
	"coral/internal/workload"
)

// E09 — the save-module facility (paper §5.4.2): retaining module state
// between calls avoids recomputation when the same subgoals recur across
// invocations.
func E09(s Scale) Table {
	t := Table{
		ID:     "E09",
		Title:  "Save-module: repeated calls without recomputation",
		Claim:  "Retaining module state between calls avoids recomputation when the same subgoal is generated in many invocations (§5.4.2).",
		Header: []string{"chain n", "calls", "discard (default)", "save_module", "speedup"},
	}
	calls := 40
	if s.Quick {
		calls = 10
	}
	for _, n := range s.sizes([]int{100, 200}, []int{60}) {
		facts := workload.Chain(n)
		run := func(ann string) time.Duration {
			sys := mustSystem(facts + workload.TCModule(ann))
			start := time.Now()
			for c := 0; c < calls; c++ {
				// The same source every time: every subgoal repeats.
				_, err := sys.MeasureCall(ast.PredKey{Name: "tc", Arity: 2},
					[]term.Term{term.Int(0), v("Y")})
				if err != nil {
					panic(err)
				}
			}
			return time.Since(start)
		}
		discard := run("")
		saved := run("@save_module.")
		t.Rows = append(t.Rows, []string{
			itoa(n), itoa(calls), ms(discard), ms(saved), ratio(discard, saved),
		})
	}
	t.Notes = "the default discards all facts at the end of each call (paper default); save_module answers repeat calls from retained state"
	return t
}

// E10 — Ordered Search (paper §5.4.1): the context restricts evaluation to
// relevant subgoals while supporting negation. The comparison point is
// pipelined (Prolog-style) evaluation, which recomputes shared subgoals.
func E10(s Scale) Table {
	t := Table{
		ID:     "E10",
		Title:  "Ordered Search on the win-move game (negation, magic relevance)",
		Claim:  "Ordered Search evaluates left-to-right modularly stratified programs, making a subgoal's answers available only when complete, with magic-style relevance (§5.4.1).",
		Header: []string{"positions", "ordered search", "subgoals", "pipelined", "pipe/OS"},
	}
	for _, n := range s.sizes([]int{60, 120}, []int{40}) {
		moves := workload.WinGameMoves(n, 3, 4, int64(n))
		osSys := mustSystem(moves + workload.WinModule("@ordered_search."))
		ot, ostats := measure(osSys, "win", term.Atom("p0"))
		// Pipelined negation-as-failure recomputes subgoals exponentially
		// on this DAG.
		pipeSys := mustSystem(moves + workload.WinModule("@pipelining."))
		pt, _ := measure(pipeSys, "win", term.Atom("p0"))
		t.Rows = append(t.Rows, []string{
			itoa(n), ms(ot), itoa(ostats.FactsStored), ms(pt), ratio(pt, ot),
		})
	}
	t.Notes = "win(X) :- move(X, Y), not win(Y) on layered DAGs; the game is not stratified, so SCC-ordered evaluation cannot run it at all"
	return t
}

// E11 — existential query rewriting (paper §4.1): projections propagate,
// so a query that observes nothing stores one fact where the full query
// stores a witness per pair.
func E11(s Scale) Table {
	t := Table{
		ID:     "E11",
		Title:  "Existential query rewriting (projection pushing)",
		Claim:  "Existential Query Rewriting propagates projections, applied by default with a selection-pushing rewriting (§4.1; [19]).",
		Header: []string{"graph", "reach(a, Y)", "facts", "reach(a, _)", "facts", "speedup"},
	}
	for _, n := range s.sizes([]int{100, 200}, []int{50}) {
		facts := workload.RandomGraph(n, 5*n, 3)
		observedSys := mustSystem(facts + workload.TCModule(""))
		ot, ostats := measure(observedSys, "tc", term.Int(0), v("Y"))
		exSys := mustSystem(facts + workload.TCModule(""))
		et, estats := measure(exSys, "tc", term.Int(0), w())
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("n=%d m=%d", n, 5*n), ms(ot), itoa(ostats.FactsStored), ms(et), itoa(estats.FactsStored), ratio(ot, et),
		})
	}
	t.Notes = "reach(a, _) projects the destination away: answers collapse to existence and duplicate elimination prunes the search"
	return t
}

// E12 — lazy evaluation (paper §5.4.3): answers surface at the end of each
// fixpoint iteration instead of after the whole fixpoint.
func E12(s Scale) Table {
	t := Table{
		ID:     "E12",
		Title:  "Lazy vs eager answer return (time to first answer)",
		Claim:  "Lazy evaluation returns the answers generated so far at the end of every iteration, instead of at the end of the computation (§5.4.3).",
		Header: []string{"chain n", "lazy first answer", "eager first answer", "eager/lazy"},
	}
	for _, n := range s.sizes([]int{300, 600}, []int{100}) {
		facts := workload.Chain(n)
		lazySys := mustSystem(facts + workload.TCModule(""))
		eagerSys := mustSystem(facts + workload.TCModule("@eager."))
		lt := timeFirstAnswer(lazySys, "tc", term.Int(0), v("Y"))
		et := timeFirstAnswer(eagerSys, "tc", term.Int(0), v("Y"))
		t.Rows = append(t.Rows, []string{itoa(n), ms(lt), ms(et), ratio(et, lt)})
	}
	t.Notes = "both run the same fixpoint; the lazy scan surfaces answers as iterations produce them"
	return t
}

// E13 — context factoring (paper §4.1; [16], [9]): on right-linear
// programs the factored program stores contexts + answers instead of
// per-context answer pairs.
func E13(s Scale) Table {
	t := Table{
		ID:     "E13",
		Title:  "Context factoring vs supplementary magic on right-linear TC",
		Claim:  "Context factoring maintains context information in factored predicates; for some programs it is superior to supplementary magic (§4.1).",
		Header: []string{"grid", "supmagic", "facts", "factoring", "facts", "speedup"},
	}
	for _, g := range s.sizes([]int{20, 30}, []int{12}) {
		facts := workload.Grid(g, g)
		supSys := mustSystem(facts + workload.RightLinearTC(""))
		st, sstats := measure(supSys, "tc", term.Int(0), v("Y"))
		facSys := mustSystem(facts + workload.RightLinearTC("@rewrite factoring."))
		ft, fstats := measure(facSys, "tc", term.Int(0), v("Y"))
		if sstats.Answers != fstats.Answers {
			panic("E13: answer mismatch")
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%dx%d", g, g), ms(st), itoa(sstats.FactsStored), ms(ft), itoa(fstats.FactsStored), ratio(st, ft),
		})
	}
	t.Notes = "right-linear reach: supplementary magic stores tc(X,Y) per context-answer pair; factoring stores reached contexts plus one answer set"
	return t
}

// E14 — multiset semantics (paper §4.2): duplicate checks are skipped on
// non-magic predicates, trading storage for check cost.
func E14(s Scale) Table {
	t := Table{
		ID:     "E14",
		Title:  "Set (subsumption checks) vs multiset semantics",
		Claim:  "The default checks subsumption on all relations; a relation can instead be treated as a multiset with duplicate checks only on magic predicates (§4.2).",
		Header: []string{"pairs", "set time", "set facts", "multiset time", "multiset facts"},
	}
	for _, n := range s.sizes([]int{60, 100}, []int{40}) {
		// A duplicate-heavy two-hop join: many (X,Z) pairs derived many
		// times through different Y.
		facts := workload.RandomGraph(n, 8*n, 5)
		mod := func(ann string) string {
			return `
module j.
export hop2(ff).
` + ann + `
hop2(X, Z) :- edge(X, Y), edge(Y, Z).
end_module.
`
		}
		setSys := mustSystem(facts + mod(""))
		st, sstats := measure(setSys, "hop2", v("X"), v("Z"))
		bagSys := mustSystem(facts + mod("@multiset hop2."))
		bt, bstats := measure(bagSys, "hop2", v("X"), v("Z"))
		t.Rows = append(t.Rows, []string{
			itoa(8 * n), ms(st), itoa(sstats.Answers), ms(bt), itoa(bstats.Answers),
		})
	}
	t.Notes = "multiset retains one fact per derivation (SQL-consistent on non-recursive queries, per the paper's footnote)"
	return t
}

// E15 — persistent relations (paper §2, §3.2): get-next-tuple over
// disk-resident data is page-level I/O through the buffer pool; I/O counts
// track the buffer size.
func E15(s Scale) Table {
	t := Table{
		ID:     "E15",
		Title:  "Persistent relations: buffer pool behaviour under scans and indexed lookups",
		Claim:  "Persistent data is paged into buffers on demand; get-next-tuple requests become page-level I/O requests by the buffer manager (§2, §3.2).",
		Header: []string{"tuples", "frames", "scan reads", "hit ratio", "indexed probe reads", "probe hit ratio"},
	}
	tuples := 20000
	if s.Quick {
		tuples = 4000
	}
	dir, err := os.MkdirTemp("", "coral-e15-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	for _, frames := range s.sizes([]int{8, 64, 512}, []int{8, 64}) {
		db, err := storage.Open(filepath.Join(dir, fmt.Sprintf("e15-%d.cdb", frames)), frames)
		if err != nil {
			panic(err)
		}
		rel, err := db.Relation("edge", 2)
		if err != nil {
			panic(err)
		}
		for i := 0; i < tuples; i++ {
			rel.Insert(relation.GroundFact(term.Int(int64(i)), term.Int(int64(i+1))))
		}
		if err := rel.CreateIndex(0); err != nil {
			panic(err)
		}
		// Two full scans: the second shows the buffer effect.
		drainIter(rel.Scan())
		db.ResetStats()
		drainIter(rel.Scan())
		scanStats := db.Stats()
		// Random indexed probes.
		db.ResetStats()
		for i := 0; i < 500; i++ {
			k := (i * 37) % tuples
			drainIter(rel.Lookup([]term.Term{term.Int(int64(k)), v("Y")}, nil))
		}
		probeStats := db.Stats()
		t.Rows = append(t.Rows, []string{
			itoa(tuples), itoa(frames),
			itoa(scanStats.PageReads), fmt.Sprintf("%.2f", scanStats.HitRatio()),
			itoa(probeStats.PageReads), fmt.Sprintf("%.2f", probeStats.HitRatio()),
		})
		db.Close()
	}
	t.Notes = "larger pools turn repeated page requests into hits; the smallest pool re-reads nearly every page"
	return t
}

// E16 — interpretation vs compilation (paper §2): CORAL interprets the
// rewritten internal form because consulting must be fast for interactive
// development; compilation to C++ bought little. We report the
// consult+optimize cost against evaluation cost.
func E16(s Scale) Table {
	t := Table{
		ID:     "E16",
		Title:  "Consult/optimize cost vs evaluation cost (interpreted system)",
		Claim:  "Consulting a program takes very little time; the interpreted internal form made compilation's small speedup not worth its compile time (§2).",
		Header: []string{"program", "consult+optimize", "evaluate", "consult share"},
	}
	progs := []struct {
		name  string
		facts string
		mod   string
		pred  string
		args  []term.Term
	}{
		{"transitive closure", workload.Chain(120), workload.TCModule(""), "tc", []term.Term{term.Int(0), v("Y")}},
		{"mutual recursion k=4", workload.Chain(40), workload.MutualRecursion(4, ""), "p0", []term.Term{term.Int(0), v("Y")}},
		{"figure 3 shortest path", workload.WeightedGraph(40, 160, 10, 9), workload.ShortestPathModule("@ordered_search."), "s_p", []term.Term{term.Int(0), v("Y"), v("P"), v("C")}},
	}
	for _, p := range progs {
		start := time.Now()
		src := p.facts + p.mod
		u, err := parser.Parse(src)
		if err != nil {
			panic(err)
		}
		sys := mustSystemFromUnit(u)
		consult := time.Since(start)
		start = time.Now()
		if _, err := sys.MeasureCall(ast.PredKey{Name: p.pred, Arity: len(p.args)}, p.args); err != nil {
			panic(err)
		}
		eval := time.Since(start)
		share := float64(consult) / float64(consult+eval) * 100
		t.Rows = append(t.Rows, []string{p.name, ms(consult), ms(eval), fmt.Sprintf("%.0f%%", share)})
	}
	t.Notes = "consult includes parsing the facts, adornment, magic rewriting, compilation to internal form and index planning"
	return t
}

func mustSystemFromUnit(u *ast.Unit) *engine.System {
	sys := engine.NewSystem()
	for _, f := range u.Facts {
		rel, err := sys.BaseRelation(f.Pred, len(f.Args))
		if err != nil {
			panic(err)
		}
		rel.Insert(relation.NewFact(f.Args, nil))
	}
	for _, m := range u.Modules {
		if err := sys.AddModule(m); err != nil {
			panic(err)
		}
	}
	return sys
}
