package experiments

import (
	"fmt"
	"time"

	"coral/internal/ast"
	"coral/internal/engine"
	"coral/internal/relation"
	"coral/internal/term"
	"coral/internal/workload"
)

// E01 — naive vs Basic Semi-Naive fixpoint (paper §5.3): semi-naive
// evaluation avoids rederiving facts; the gap grows with the number of
// iterations (graph diameter).
func E01(s Scale) Table {
	t := Table{
		ID:     "E01",
		Title:  "Naive vs Basic Semi-Naive evaluation",
		Claim:  "Semi-naive evaluation performs incremental evaluation of rules across iterations, avoiding the rederivations of naive fixpoint iteration (§5.3).",
		Header: []string{"chain n", "naive time", "naive derivs", "BSN time", "BSN derivs", "speedup"},
	}
	for _, n := range s.sizes([]int{64, 128, 256}, []int{32}) {
		facts := workload.Chain(n)
		naiveSys := mustSystem(facts + workload.TCModule("@naive.\n@rewrite none."))
		bsnSys := mustSystem(facts + workload.TCModule("@rewrite none."))
		nt, nstats := measure(naiveSys, "tc", v("X"), v("Y"))
		bt, bstats := measure(bsnSys, "tc", v("X"), v("Y"))
		if nstats.Answers != bstats.Answers {
			panic("E01: answer mismatch")
		}
		t.Rows = append(t.Rows, []string{
			itoa(n), ms(nt), itoa(nstats.Derivations), ms(bt), itoa(bstats.Derivations), ratio(nt, bt),
		})
	}
	t.Notes = "full transitive closure (ff query form); derivations count successful rule-head instantiations"
	return t
}

// E02 — BSN vs Predicate Semi-Naive (paper §4.2): PSN "is better for
// programs with many mutually recursive predicates" because facts produced
// early in an iteration feed later predicates in the same iteration.
func E02(s Scale) Table {
	t := Table{
		ID:     "E02",
		Title:  "Basic vs Predicate Semi-Naive on mutually recursive predicates",
		Claim:  "PSN is better for programs with many mutually recursive predicates (§4.2; [22]).",
		Header: []string{"preds k", "BSN iters", "BSN time", "PSN iters", "PSN time", "iter ratio"},
	}
	n := 48
	if s.Quick {
		n = 24
	}
	for _, k := range s.sizes([]int{2, 4, 8}, []int{3}) {
		facts := workload.Chain(n)
		bsnSys := mustSystem(facts + workload.MutualRecursion(k, "@bsn.\n@rewrite none."))
		psnSys := mustSystem(facts + workload.MutualRecursion(k, "@psn.\n@rewrite none."))
		bt, bstats := measure(bsnSys, "p0", v("X"), v("Y"))
		pt, pstats := measure(psnSys, "p0", v("X"), v("Y"))
		if bstats.Answers != pstats.Answers {
			panic("E02: answer mismatch")
		}
		t.Rows = append(t.Rows, []string{
			itoa(k), itoa(bstats.Iterations), ms(bt), itoa(pstats.Iterations), ms(pt),
			fmt.Sprintf("%.1fx", float64(bstats.Iterations)/float64(max1(pstats.Iterations))),
		})
	}
	t.Notes = "k mutually recursive copies of transitive closure over one chain; PSN reaches the fixpoint in ~k× fewer iterations"
	return t
}

func max1(n int) int {
	if n < 1 {
		return 1
	}
	return n
}

// E03 — selection propagation (paper §4.1): magic rewriting restricts
// evaluation to facts relevant to a selective query; supplementary magic
// shares prefix joins. On a non-selective query the rewriting only adds
// overhead — the crossover the paper's "each technique is superior for
// some programs" sentence implies.
func E03(s Scale) Table {
	t := Table{
		ID:     "E03",
		Title:  "No rewriting vs Magic vs Supplementary Magic",
		Claim:  "Rewriting propagates query selections; Supplementary Magic is a good default (§4.1).",
		Header: []string{"tree depth", "query", "none", "magic", "supmagic", "none facts", "supmagic facts"},
	}
	depths := s.sizes([]int{7, 8}, []int{5})
	for _, d := range depths {
		facts := workload.Tree(2, d)
		// With breadth-first ids over a complete binary tree of depth d,
		// the last internal node is (2^(d+1)-1)/2 - 1; its cone is two
		// leaves — maximally selective.
		total := 1<<(d+1) - 1
		deepNode := total/2 - 1
		for _, q := range []string{"bound", "free"} {
			var args []term.Term
			if q == "bound" {
				args = []term.Term{term.Int(int64(deepNode)), v("Y")}
			} else {
				args = []term.Term{v("X"), v("Y")}
			}
			noneSys := mustSystem(facts + workload.TCModule("@rewrite none."))
			magicSys := mustSystem(facts + workload.TCModule("@rewrite magic."))
			supSys := mustSystem(facts + workload.TCModule(""))
			nt, nstats := measure(noneSys, "tc", args...)
			mt, _ := measure(magicSys, "tc", args...)
			st, sstats := measure(supSys, "tc", args...)
			t.Rows = append(t.Rows, []string{
				itoa(d), q, ms(nt), ms(mt), ms(st), itoa(nstats.FactsStored), itoa(sstats.FactsStored),
			})
		}
	}
	t.Notes = "binary tree edges; bound query tc(1, Y) touches one subtree — magic variants win; free query shows the rewriting overhead (crossover)"
	return t
}

// E04 — pipelining vs materialization (paper §5): pipelining stores
// nothing at the potential cost of recomputation; materialization stores
// facts to avoid recomputation. A chain of diamonds makes shared subgoals
// exponential for pipelining; a tree query with one answer favors
// pipelining's time-to-first-answer.
func E04(s Scale) Table {
	t := Table{
		ID:     "E04",
		Title:  "Pipelining vs materialization",
		Claim:  "Pipelining uses facts on-the-fly without storing them, at the potential cost of recomputation; materialization stores facts and looks them up (§5).",
		Header: []string{"workload", "pipelined", "materialized", "pipe/mat"},
	}
	// Diamond chain: exponential proof DAG sharing.
	k := 12
	if s.Quick {
		k = 8
	}
	var b []byte
	for i := 0; i < k; i++ {
		base := 3 * i
		b = append(b, []byte(fmt.Sprintf("edge(%d, %d). edge(%d, %d). edge(%d, %d). edge(%d, %d).\n",
			base, base+1, base, base+2, base+1, base+3, base+2, base+3))...)
	}
	diamonds := string(b)
	pipeSys := mustSystem(diamonds + workload.TCModule("@pipelining."))
	matSys := mustSystem(diamonds + workload.TCModule(""))
	pt, pstats := measure(pipeSys, "tc", term.Int(0), term.Int(3*k))
	mt, mstats := measure(matSys, "tc", term.Int(0), term.Int(3*k))
	// Pipelining enumerates one answer per proof (Prolog-style, no
	// duplicate elimination); materialization returns the answer set. Both
	// must at least find the target.
	if pstats.Answers < 1 || mstats.Answers != 1 {
		panic("E04: expected the target to be reachable")
	}
	t.Rows = append(t.Rows, []string{
		fmt.Sprintf("diamond chain k=%d (shared subgoals)", k), ms(pt), ms(mt), ratio(pt, mt),
	})
	// First-answer on a deep chain: pipelining streams immediately.
	n := 400
	if s.Quick {
		n = 100
	}
	chain := workload.Chain(n)
	pipeSys = mustSystem(chain + workload.TCModule("@pipelining."))
	matSys = mustSystem(chain + workload.TCModule("@eager."))
	pt = timeFirstAnswer(pipeSys, "tc", term.Int(0), v("Y"))
	mt = timeFirstAnswer(matSys, "tc", term.Int(0), v("Y"))
	t.Rows = append(t.Rows, []string{
		fmt.Sprintf("chain n=%d, first answer", n), ms(pt), ms(mt), ratio(pt, mt),
	})
	t.Notes = "diamond chain: materialization wins (pipelining recomputes shared subproofs exponentially); first-answer latency: pipelining wins"
	return t
}

func timeFirstAnswer(sys *engine.System, pred string, args ...term.Term) time.Duration {
	d, err := sys.MeasureFirstAnswer(ast.PredKey{Name: pred, Arity: len(args)}, args)
	if err != nil {
		panic("experiments: " + err.Error())
	}
	return d
}

// E05 — the Figure 3 shortest-path program: with the two aggregate
// selections and a single-source query under Ordered Search + magic, the
// run time grows roughly as E·V (the paper's complexity claim, §5.5.2).
func E05(s Scale) Table {
	t := Table{
		ID:     "E05",
		Title:  "Figure 3 shortest paths: aggregate selections, O(E·V) single-source",
		Claim:  "With the aggregate selection (and any-choice), a single-source query runs in O(E·V); without it the program may run forever (§5.5.2).",
		Header: []string{"V", "E", "time", "time/(E*V) ns", "answers", "p-facts kept"},
	}
	for _, V := range s.sizes([]int{40, 80, 160}, []int{24}) {
		E := 4 * V
		facts := workload.WeightedGraph(V, E, 10, int64(V))
		sys := mustSystem(facts + workload.ShortestPathModule("@ordered_search."))
		dur, stats := measure(sys, "s_p", term.Int(0), v("Y"), v("P"), v("C"))
		norm := float64(dur.Nanoseconds()) / float64(E*V)
		t.Rows = append(t.Rows, []string{
			itoa(V), itoa(E), ms(dur), fmt.Sprintf("%.0f", norm), itoa(stats.Answers), itoa(stats.FactsStored),
		})
	}
	t.Notes = "time/(E*V) staying near-constant across sizes is the paper's O(E·V) shape; cycles in the graph would loop forever without the min-selection"
	return t
}

// E06 — argument-form indexes (paper §3.3, §5.3): the nested-loops join is
// efficient only with index lookups on bound positions.
func E06(s Scale) Table {
	t := Table{
		ID:     "E06",
		Title:  "Argument-form index vs scan in the nested-loops join",
		Claim:  "The basic join mechanism is nested loops with indexing; the optimizer creates indexes for the evaluation's bound positions (§3.3, §5.3).",
		Header: []string{"edges", "indexed", "no indexing", "slowdown", "indexed attempts", "scan attempts"},
	}
	for _, n := range s.sizes([]int{150, 300}, []int{100}) {
		facts := workload.RandomGraph(n, 3*n, 11)
		idxSys := mustSystem(facts + workload.TCModule("@rewrite none."))
		scanSys := mustSystem(facts + workload.TCModule("@rewrite none.\n@no_indexing."))
		it, istats := measure(idxSys, "tc", term.Int(0), v("Y"))
		st, sstats := measure(scanSys, "tc", term.Int(0), v("Y"))
		if istats.Answers != sstats.Answers {
			panic("E06: answer mismatch")
		}
		t.Rows = append(t.Rows, []string{
			itoa(3 * n), ms(it), ms(st), ratio(st, it), itoa(istats.Attempts), itoa(sstats.Attempts),
		})
	}
	t.Notes = "attempts counts tuples considered across join loops: the index turns O(E) scans into bucket probes"
	return t
}

// E07 — pattern-form indexes (paper §3.3, §5.5.1): retrieving employees by
// name and city, where the city is nested inside an addr(...) term.
func E07(s Scale) Table {
	t := Table{
		ID:     "E07",
		Title:  "Pattern-form index on emp(Name, addr(Street, City))",
		Claim:  "Pattern-form indices retrieve precisely those facts matching a pattern with variables, e.g. employees in a city without knowing the street (§3.3, §5.5.1).",
		Header: []string{"employees", "lookups", "pattern-indexed", "scan", "speedup"},
	}
	for _, n := range s.sizes([]int{2000, 8000}, []int{1000}) {
		src := workload.Employees(n, 50)
		mkQuery := func(i int) []term.Term {
			return []term.Term{
				term.Atom(fmt.Sprintf("name%d", i)),
				term.NewFunctor("addr", v("S"), term.Atom(fmt.Sprintf("city%d", i%50))),
			}
		}
		lookups := 200
		idxSys := mustSystem(src)
		idxRel, err := idxSys.BaseRelation("emp", 2)
		if err != nil {
			panic("experiments: " + err.Error())
		}
		idxRel.MakePatternIndex([]term.Term{v("Name"), term.NewFunctor("addr", v("Street"), v("City"))}, []string{"Name", "City"})
		scanSys := mustSystem(src)
		scanRel, err := scanSys.BaseRelation("emp", 2)
		if err != nil {
			panic("experiments: " + err.Error())
		}

		start := time.Now()
		for i := 0; i < lookups; i++ {
			drainIter(idxRel.Lookup(mkQuery(i), nil))
		}
		it := time.Since(start)
		start = time.Now()
		for i := 0; i < lookups; i++ {
			drainIter(scanRel.Lookup(mkQuery(i), nil))
		}
		st := time.Since(start)
		t.Rows = append(t.Rows, []string{itoa(n), itoa(lookups), ms(it), ms(st), ratio(st, it)})
	}
	return t
}

func drainIter(it relation.Iterator) {
	for {
		if _, ok := it.Next(); !ok {
			return
		}
	}
}

// E08 — hash-consing (paper §3.1): unique identifiers make equality and
// unification of large ground terms O(1) after interning.
func E08(s Scale) Table {
	t := Table{
		ID:     "E08",
		Title:  "Hash-consed vs structural unification of large ground terms",
		Claim:  "Hash-consing assigns unique identifiers to ground terms so that two ground terms unify iff their identifiers are equal, making unification of large terms very efficient (§3.1).",
		Header: []string{"term depth", "nodes", "hash-consed", "structural", "speedup"},
	}
	reps := 20000
	if s.Quick {
		reps = 2000
	}
	for _, depth := range s.sizes([]int{8, 12, 16}, []int{8}) {
		a := workload.DeepTerm(depth, 1)
		b := workload.DeepTerm(depth, 1)
		term.GroundID(a.(*term.Functor))
		term.GroundID(b.(*term.Functor))
		var tr term.Trail
		start := time.Now()
		for i := 0; i < reps; i++ {
			if !term.Unify(a, nil, b, nil, &tr) {
				panic("E08: unify failed")
			}
		}
		hc := time.Since(start)
		start = time.Now()
		for i := 0; i < reps; i++ {
			if !term.UnifyStructural(a, nil, b, nil, &tr) {
				panic("E08: structural unify failed")
			}
		}
		st := time.Since(start)
		t.Rows = append(t.Rows, []string{
			itoa(depth), itoa(1<<uint(depth+1) - 1), ms(hc), ms(st), ratio(st, hc),
		})
	}
	t.Notes = "identical binary trees; hash-consed unification is one identifier comparison regardless of size"
	return t
}
