package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// TestAllExperimentsQuick runs every experiment at quick scale: the harness
// must produce a non-empty, well-formed table for each, and the
// cross-checks inside the experiments (answer-set agreement between
// strategies) must hold.
func TestAllExperimentsQuick(t *testing.T) {
	tables := All(Scale{Quick: true})
	if len(tables) != 16 {
		t.Fatalf("got %d experiments", len(tables))
	}
	seen := map[string]bool{}
	for _, tb := range tables {
		if tb.ID == "" || tb.Title == "" || tb.Claim == "" {
			t.Errorf("experiment %q lacks metadata", tb.ID)
		}
		if seen[tb.ID] {
			t.Errorf("duplicate experiment id %s", tb.ID)
		}
		seen[tb.ID] = true
		if len(tb.Rows) == 0 {
			t.Errorf("%s produced no rows", tb.ID)
		}
		for _, r := range tb.Rows {
			if len(r) != len(tb.Header) {
				t.Errorf("%s row width %d != header %d", tb.ID, len(r), len(tb.Header))
			}
		}
		text := tb.Print()
		if !strings.Contains(text, tb.ID) || !strings.Contains(text, tb.Header[0]) {
			t.Errorf("%s Print output malformed", tb.ID)
		}
	}
}

// Shape assertions for selected experiments: the *direction* of each
// paper claim must hold even at quick scale.
func TestE01SeminaiveBeatsNaive(t *testing.T) {
	tb := E01(Scale{Quick: true})
	// naive derivations (col 2) must exceed BSN derivations (col 4).
	for _, r := range tb.Rows {
		if !less(r[4], r[2]) {
			t.Errorf("BSN derivations %s not < naive %s", r[4], r[2])
		}
	}
}

func TestE02PSNFewerIterations(t *testing.T) {
	tb := E02(Scale{Quick: true})
	for _, r := range tb.Rows {
		if !less(r[3], r[1]) {
			t.Errorf("PSN iterations %s not < BSN %s", r[3], r[1])
		}
	}
}

func TestE13FactoringStoresFewerFacts(t *testing.T) {
	tb := E13(Scale{Quick: true})
	for _, r := range tb.Rows {
		if !less(r[4], r[2]) {
			t.Errorf("factoring facts %s not < supmagic %s", r[4], r[2])
		}
	}
}

func TestE11ExistentialStoresFewerFacts(t *testing.T) {
	tb := E11(Scale{Quick: true})
	for _, r := range tb.Rows {
		if !less(r[4], r[2]) {
			t.Errorf("existential facts %s not < observed %s", r[4], r[2])
		}
	}
}

func TestE14MultisetKeepsMoreAnswers(t *testing.T) {
	tb := E14(Scale{Quick: true})
	for _, r := range tb.Rows {
		if !less(r[2], r[4]) {
			t.Errorf("set answers %s not < multiset %s", r[2], r[4])
		}
	}
}

// less compares two integer cell strings.
func less(a, b string) bool {
	x, errA := strconv.Atoi(a)
	y, errB := strconv.Atoi(b)
	return errA == nil && errB == nil && x < y
}
