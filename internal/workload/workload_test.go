package workload

import (
	"strings"
	"testing"

	"coral/internal/parser"
	"coral/internal/term"
)

func countFacts(t *testing.T, src, pred string) int {
	t.Helper()
	u, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("generated text does not parse: %v", err)
	}
	n := 0
	for _, f := range u.Facts {
		if f.Pred == pred {
			n++
		}
	}
	return n
}

func TestChainCycleCounts(t *testing.T) {
	if got := countFacts(t, Chain(10), "edge"); got != 10 {
		t.Errorf("chain edges: %d", got)
	}
	if got := countFacts(t, Cycle(7), "edge"); got != 7 {
		t.Errorf("cycle edges: %d", got)
	}
}

func TestTreeAndGridCounts(t *testing.T) {
	// Complete binary tree of depth 3: 2+4+8 = 14 edges.
	if got := countFacts(t, Tree(2, 3), "edge"); got != 14 {
		t.Errorf("tree edges: %d", got)
	}
	// w*h grid: (w-1)*h right + w*(h-1) down.
	if got := countFacts(t, Grid(4, 3), "edge"); got != 3*3+4*2 {
		t.Errorf("grid edges: %d", got)
	}
}

func TestRandomGraphDistinct(t *testing.T) {
	src := RandomGraph(20, 50, 1)
	if got := countFacts(t, src, "edge"); got != 50 {
		t.Errorf("random graph edges: %d", got)
	}
	// Determinism per seed.
	if RandomGraph(20, 50, 1) != src {
		t.Error("same seed produced different graphs")
	}
	if RandomGraph(20, 50, 2) == src {
		t.Error("different seeds produced identical graphs")
	}
}

func TestWeightedGraphConnected(t *testing.T) {
	src := WeightedGraph(15, 40, 10, 3)
	if got := countFacts(t, src, "edge"); got != 40 {
		t.Errorf("weighted edges: %d", got)
	}
	// The backbone guarantees reachability from node 0; verify by a quick
	// closure over the parsed facts.
	u, _ := parser.Parse(src)
	adj := map[int64][]int64{}
	for _, f := range u.Facts {
		from := int64(f.Args[0].(term.Int))
		to := int64(f.Args[1].(term.Int))
		adj[from] = append(adj[from], to)
	}
	seen := map[int64]bool{0: true}
	stack := []int64{0}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range adj[v] {
			if !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	if len(seen) != 15 {
		t.Errorf("only %d of 15 nodes reachable from 0", len(seen))
	}
}

func TestModuleGeneratorsParse(t *testing.T) {
	for name, src := range map[string]string{
		"tc":       TCModule("@psn."),
		"rightlin": RightLinearTC(""),
		"mutual":   MutualRecursion(3, ""),
		"shortest": ShortestPathModule("@ordered_search."),
		"win":      WinModule("@ordered_search."),
	} {
		u, err := parser.Parse(src)
		if err != nil {
			t.Errorf("%s does not parse: %v", name, err)
			continue
		}
		if len(u.Modules) != 1 {
			t.Errorf("%s: %d modules", name, len(u.Modules))
		}
	}
	if got := countFacts(t, WinGameMoves(20, 2, 3, 1), "move"); got == 0 {
		t.Error("no moves generated")
	}
	if got := countFacts(t, Employees(25, 5), "emp"); got != 25 {
		t.Errorf("employees: %d", got)
	}
}

func TestMutualRecursionShape(t *testing.T) {
	u, err := parser.Parse(MutualRecursion(4, ""))
	if err != nil {
		t.Fatal(err)
	}
	m := u.Modules[0]
	if len(m.Rules) != 8 {
		t.Errorf("rules: %d", len(m.Rules))
	}
	// p0's recursive rule must call p1.
	if !strings.Contains(m.Rules[1].String(), "p1(") {
		t.Errorf("p0 recursive rule: %s", m.Rules[1])
	}
}

func TestDeepTermAndList(t *testing.T) {
	d := DeepTerm(4, 1)
	if !term.IsGround(d) {
		t.Error("deep term not ground")
	}
	l := DeepList(5)
	n := 0
	for {
		_, tail, ok := term.IsCons(l)
		if !ok {
			break
		}
		n++
		l = tail
	}
	if n != 5 {
		t.Errorf("list length: %d", n)
	}
	if len(RandomPairs(10, 30, 1)) != 30 {
		t.Error("random pairs count")
	}
	if len(GroundFacts([][2]int{{1, 2}, {3, 4}})) != 2 {
		t.Error("ground facts count")
	}
}
