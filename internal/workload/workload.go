// Package workload generates the synthetic datasets and program texts the
// benchmark harness sweeps over: chains, cycles, grids, trees and random
// graphs for transitive-closure-style programs, weighted graphs for the
// shortest-path program of Figure 3, mutually recursive predicate families
// for the PSN experiment, employee data for index experiments, and deep
// ground terms for the hash-consing experiment.
package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"coral/internal/relation"
	"coral/internal/term"
)

// Chain writes edge(i, i+1) for i in [0, n).
func Chain(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "edge(%d, %d).\n", i, i+1)
	}
	return b.String()
}

// Cycle writes a ring of n edges.
func Cycle(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "edge(%d, %d).\n", i, (i+1)%n)
	}
	return b.String()
}

// Tree writes a complete tree with the given fanout and depth; node ids
// are breadth-first integers rooted at 0.
func Tree(fanout, depth int) string {
	var b strings.Builder
	next := 1
	frontier := []int{0}
	for d := 0; d < depth; d++ {
		var newFrontier []int
		for _, p := range frontier {
			for c := 0; c < fanout; c++ {
				fmt.Fprintf(&b, "edge(%d, %d).\n", p, next)
				newFrontier = append(newFrontier, next)
				next++
			}
		}
		frontier = newFrontier
	}
	return b.String()
}

// Grid writes a w×h grid with right and down edges (node id = y*w+x).
func Grid(w, h int) string {
	var b strings.Builder
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			id := y*w + x
			if x+1 < w {
				fmt.Fprintf(&b, "edge(%d, %d).\n", id, id+1)
			}
			if y+1 < h {
				fmt.Fprintf(&b, "edge(%d, %d).\n", id, id+w)
			}
		}
	}
	return b.String()
}

// RandomGraph writes m distinct random edges over n nodes.
func RandomGraph(n, m int, seed int64) string {
	r := rand.New(rand.NewSource(seed))
	var b strings.Builder
	seen := map[[2]int]bool{}
	for len(seen) < m {
		e := [2]int{r.Intn(n), r.Intn(n)}
		if e[0] == e[1] || seen[e] {
			continue
		}
		seen[e] = true
		fmt.Fprintf(&b, "edge(%d, %d).\n", e[0], e[1])
	}
	return b.String()
}

// WeightedGraph writes m random weighted edges edge(u, v, w) over n nodes,
// weights in [1, maxW]. The graph includes a Hamiltonian-ish backbone so
// every node is reachable from node 0.
func WeightedGraph(n, m int, maxW int, seed int64) string {
	r := rand.New(rand.NewSource(seed))
	var b strings.Builder
	seen := map[[2]int]bool{}
	emit := func(u, v int) {
		e := [2]int{u, v}
		if u == v || seen[e] {
			return
		}
		seen[e] = true
		fmt.Fprintf(&b, "edge(%d, %d, %d).\n", u, v, 1+r.Intn(maxW))
	}
	perm := r.Perm(n)
	for i := 0; i+1 < n; i++ {
		emit(perm[i], perm[i+1])
	}
	emit(0, perm[0])
	for len(seen) < m {
		emit(r.Intn(n), r.Intn(n))
	}
	return b.String()
}

// TCModule is the linear transitive-closure module with the given
// annotations spliced in.
func TCModule(ann string) string {
	return `
module tc.
export tc(bf, ff).
` + ann + `
tc(X, Y) :- edge(X, Y).
tc(X, Y) :- edge(X, Z), tc(Z, Y).
end_module.
`
}

// RightLinearTC is the right-recursive variant that context factoring
// accepts.
func RightLinearTC(ann string) string {
	return `
module tc.
export tc(bf).
` + ann + `
tc(X, Y) :- edge(X, Y).
tc(X, Y) :- edge(X, Z), tc(Z, Y).
end_module.
`
}

// MutualRecursion builds a module with k mutually recursive path
// predicates p0..p{k-1}: pi(X,Y) :- edge(X,Y); pi(X,Y) :- edge(X,Z),
// p{(i+1)%k}(Z,Y). All are one SCC; PSN's predicate ordering propagates
// facts within an iteration while BSN waits a full round per predicate.
func MutualRecursion(k int, ann string) string {
	var b strings.Builder
	b.WriteString("module mut.\nexport p0(bf, ff).\n")
	b.WriteString(ann)
	for i := 0; i < k; i++ {
		fmt.Fprintf(&b, "p%d(X, Y) :- edge(X, Y).\n", i)
		fmt.Fprintf(&b, "p%d(X, Y) :- edge(X, Z), p%d(Z, Y).\n", i, (i+1)%k)
	}
	b.WriteString("end_module.\n")
	return b.String()
}

// ReachModule is plain reachability over the weighted edge/3 relation
// (the shortest-path workload's graph): the cost argument is read but not
// aggregated, so the fixpoint is a pure BSN round — the workload the
// parallel fixpoint benchmark (BenchmarkE05Par) partitions across cores.
func ReachModule(ann string) string {
	return `
module reach.
export reach(ff, bf).
` + ann + `
reach(X, Y) :- edge(X, Y, C).
reach(X, Y) :- edge(X, Z, C), reach(Z, Y).
end_module.
`
}

// RandomDatalogModule emits a randomized mutually recursive Datalog module
// deterministically derived from seed: k predicates p0..p{k-1} over a
// binary edge relation, each with the exit rule pi(X,Y) :- edge(X,Y) and
// 1–3 recursive rules drawn from the safe join shapes
//
//	pi(X, Y) :- edge(X, Z), pj(Z, Y).
//	pi(X, Y) :- pj(X, Z), edge(Z, Y).
//	pi(X, Y) :- pj(X, Z), pk(Z, Y).
//
// Every rule is range-restricted and every derived value is a graph node,
// so the fixpoint always terminates. p0 is exported free-free; splice ann
// (e.g. "@rewrite none.") to pick the evaluation strategy. The property
// test in internal/engine runs these under BSN, PSN, naive and parallel
// evaluation and requires identical answer sets.
//
// Seed-dependently, the module grows two extra layers above the recursive
// core: a stratified negation layer (q0, exported when present) whose
// negated literal is fully bound by the positive part, and an
// @aggregate_selection layer (agg0, exported when present) using min — a
// deterministic selection whose surviving set is independent of derivation
// order, unlike any. The draws come after the p-layer's, so a given seed
// produces the same recursive core it always did; aggregate selections
// disable parallel rounds wholesale, which is why agg emission must not be
// unconditional — seeds without it keep parallel differential coverage.
func RandomDatalogModule(seed int64, ann string) string {
	r := rand.New(rand.NewSource(seed))
	k := 2 + r.Intn(3)
	var rules strings.Builder
	for i := 0; i < k; i++ {
		fmt.Fprintf(&rules, "p%d(X, Y) :- edge(X, Y).\n", i)
		n := 1 + r.Intn(3)
		for ; n > 0; n-- {
			j := r.Intn(k)
			switch r.Intn(3) {
			case 0:
				fmt.Fprintf(&rules, "p%d(X, Y) :- edge(X, Z), p%d(Z, Y).\n", i, j)
			case 1:
				fmt.Fprintf(&rules, "p%d(X, Y) :- p%d(X, Z), edge(Z, Y).\n", i, j)
			default:
				fmt.Fprintf(&rules, "p%d(X, Y) :- p%d(X, Z), p%d(Z, Y).\n", i, j, r.Intn(k))
			}
		}
	}
	hasNeg := r.Intn(2) == 0
	hasAgg := r.Intn(3) == 0
	var b strings.Builder
	b.WriteString("module rnd.\nexport p0(ff).\n")
	if hasNeg {
		b.WriteString("export q0(ff).\n")
	}
	if hasAgg {
		b.WriteString("export agg0(ff).\n")
	}
	b.WriteString(ann)
	if hasAgg {
		b.WriteString("@aggregate_selection agg0(X, Y) (X) min(Y).\n")
	}
	b.WriteString(rules.String())
	if hasNeg {
		// Stratified by construction: q0 sits strictly above the p-layer
		// and the negated literal's variables are bound by the positive one.
		fmt.Fprintf(&b, "q0(X, Y) :- p0(X, Y), not p%d(Y, X).\n", r.Intn(k))
	}
	if hasAgg {
		// A non-recursive sink: min keeps, per X, only the smallest Y.
		b.WriteString("agg0(X, Y) :- p0(X, Y).\n")
	}
	b.WriteString("end_module.\n")
	return b.String()
}

// ShortestPathModule is the paper's Figure 3 program (both aggregate
// selections) with the given annotations added.
func ShortestPathModule(ann string) string {
	return `
module sp.
export s_p(bfff).
` + ann + `
@aggregate_selection p(X, Y, P, C) (X, Y) min(C).
@aggregate_selection p(X, Y, P, C) (X, Y, C) any(P).
s_p(X, Y, P, C) :- s_p_length(X, Y, C), p(X, Y, P, C).
s_p_length(X, Y, min(C)) :- p(X, Y, P, C).
p(X, Y, P1, C1) :- p(X, Z, P, C), edge(Z, Y, EC), P1 = [e(Z, Y)|P], C1 = C + EC.
p(X, Y, [e(X, Y)], C) :- edge(X, Y, C).
end_module.
`
}

// Employees writes n employee facts emp(name_i, addr(street_i, city_{i mod
// cities})).
func Employees(n, cities int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "emp(name%d, addr(street%d, city%d)).\n", i, i, i%cities)
	}
	return b.String()
}

// DeepList builds a ground list [0, 1, ..., n-1].
func DeepList(n int) term.Term {
	items := make([]term.Term, n)
	for i := range items {
		items[i] = term.Int(int64(i))
	}
	return term.MakeList(items...)
}

// DeepTerm builds a ground binary tree term of the given depth.
func DeepTerm(depth int, salt int64) term.Term {
	if depth == 0 {
		return term.Int(salt)
	}
	return term.NewFunctor("n", DeepTerm(depth-1, salt*2), DeepTerm(depth-1, salt*2+1))
}

// GroundFacts converts integer pairs into relation facts (storage and
// index benchmarks).
func GroundFacts(pairs [][2]int) []relation.Fact {
	out := make([]relation.Fact, len(pairs))
	for i, p := range pairs {
		out[i] = relation.GroundFact(term.Int(int64(p[0])), term.Int(int64(p[1])))
	}
	return out
}

// RandomPairs yields m random pairs over [0, n).
func RandomPairs(n, m int, seed int64) [][2]int {
	r := rand.New(rand.NewSource(seed))
	out := make([][2]int, m)
	for i := range out {
		out[i] = [2]int{r.Intn(n), r.Intn(n)}
	}
	return out
}

// WinGameMoves writes a random game graph: move(i, j) edges going upward
// from i to at most `branch` positions in (i, i+gap]; position n-1 has no
// moves. Modularly stratified for win(X) :- move(X,Y), not win(Y).
func WinGameMoves(n, branch, gap int, seed int64) string {
	r := rand.New(rand.NewSource(seed))
	var b strings.Builder
	for i := 0; i < n-1; i++ {
		k := 1 + r.Intn(branch)
		for j := 0; j < k; j++ {
			to := i + 1 + r.Intn(gap)
			if to >= n {
				to = n - 1
			}
			fmt.Fprintf(&b, "move(p%d, p%d).\n", i, to)
		}
	}
	return b.String()
}

// WinModule is the game program, optionally with ordered search.
func WinModule(ann string) string {
	return `
module game.
export win(b).
` + ann + `
win(X) :- move(X, Y), not win(Y).
end_module.
`
}
