package coral

import (
	"math/big"

	"coral/internal/parser"
	"coral/internal/term"
)

// Term is a CORAL value: the class Arg of the paper (§3). The built-in
// implementations are integers, doubles, strings, arbitrary-precision
// integers, atoms and functor terms, and variables. User-defined abstract
// data types implement term.External (§7.1) and flow through the system
// unchanged.
type Term = term.Term

// Tuple is an argument list — one row of a relation.
type Tuple []Term

// String renders the tuple as "(a, b, c)".
func (t Tuple) String() string {
	s := "("
	for i, a := range t {
		if i > 0 {
			s += ", "
		}
		s += a.String()
	}
	return s + ")"
}

// Int builds an integer constant.
func Int(v int64) Term { return term.Int(v) }

// Float builds a double constant.
func Float(v float64) Term { return term.Float(v) }

// Str builds a string constant.
func Str(v string) Term { return term.Str(v) }

// BigInt builds an arbitrary-precision integer constant (the paper used
// the DEC BigNum package; this reproduction uses math/big).
func BigInt(v *big.Int) Term { return term.NewBig(v) }

// Atom builds a zero-arity functor constant such as john.
func Atom(name string) Term { return term.Atom(name) }

// Func builds the functor term name(args...).
func Func(name string, args ...Term) Term { return term.NewFunctor(name, args...) }

// List builds a proper list term.
func List(items ...Term) Term { return term.MakeList(items...) }

// ListTail builds the list [items... | tail].
func ListTail(tail Term, items ...Term) Term { return term.MakeListTail(tail, items...) }

// Var builds a named logic variable for call patterns; distinct calls to
// Var yield distinct variables even for equal names.
func Var(name string) Term { return term.NewVar(name) }

// Wildcard builds an anonymous variable. Calls whose arguments are
// wildcards are subject to existential query rewriting (paper §4.1): the
// engine may avoid computing distinct witnesses for positions nobody
// observes.
func Wildcard() Term { return term.NewVar("") }

// ParseTerm parses a single term from source syntax (e.g. "f(1, [a|T])").
func ParseTerm(src string) (Term, error) { return parser.ParseTerm(src) }

// Equal reports structural equality of two ground or canonical terms,
// using hash-consing identifiers where available (paper §3.1).
func Equal(a, b Term) bool { return term.Equal(a, b) }

// Compare orders two terms (numerics by value, then strings, then
// functors structurally).
func Compare(a, b Term) int { return term.Compare(a, b) }
