package coral

// One testing.B benchmark per experiment table (E01–E16, DESIGN.md §3).
// The benchmarks exercise the same code paths as cmd/coralbench but at
// fixed, benchmark-friendly sizes; run the command for the full sweep
// tables recorded in EXPERIMENTS.md.

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"coral/internal/ast"
	"coral/internal/engine"
	"coral/internal/parser"
	"coral/internal/relation"
	"coral/internal/storage"
	"coral/internal/term"
	"coral/internal/workload"
)

// benchBase returns the in-memory base relation, failing the benchmark on
// a representation conflict.
func benchBase(b *testing.B, sys *engine.System, name string, arity int) *relation.HashRelation {
	b.Helper()
	rel, err := sys.BaseRelation(name, arity)
	if err != nil {
		b.Fatal(err)
	}
	return rel
}

// benchSystem consults source into an engine system, failing the benchmark
// on error.
func benchSystem(b *testing.B, src string) *engine.System {
	b.Helper()
	u, err := parser.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	sys := engine.NewSystem()
	for _, f := range u.Facts {
		benchBase(b, sys, f.Pred, len(f.Args)).Insert(relation.NewFact(f.Args, nil))
	}
	for _, m := range u.Modules {
		if err := sys.AddModule(m); err != nil {
			b.Fatal(err)
		}
	}
	return sys
}

func benchCall(b *testing.B, sys *engine.System, pred string, args ...term.Term) {
	b.Helper()
	stats, err := sys.MeasureCall(ast.PredKey{Name: pred, Arity: len(args)}, args)
	if err != nil {
		b.Fatal(err)
	}
	if stats.Answers == 0 {
		b.Fatal("no answers")
	}
}

func BenchmarkE01NaiveVsSeminaive(b *testing.B) {
	facts := workload.Chain(64)
	for _, mode := range []struct{ name, ann string }{
		{"naive", "@naive.\n@rewrite none."},
		{"seminaive", "@rewrite none."},
	} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sys := benchSystem(b, facts+workload.TCModule(mode.ann))
				benchCall(b, sys, "tc", term.NewVar("X"), term.NewVar("Y"))
			}
		})
	}
}

func BenchmarkE02BSNvsPSN(b *testing.B) {
	facts := workload.Chain(32)
	for _, mode := range []struct{ name, ann string }{
		{"bsn", "@bsn.\n@rewrite none."},
		{"psn", "@psn.\n@rewrite none."},
	} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sys := benchSystem(b, facts+workload.MutualRecursion(6, mode.ann))
				benchCall(b, sys, "p0", term.NewVar("X"), term.NewVar("Y"))
			}
		})
	}
}

func BenchmarkE03MagicVariants(b *testing.B) {
	const depth = 7
	facts := workload.Tree(2, depth)
	deepNode := (1<<(depth+1)-1)/2 - 1 // last internal node: cone of 2 leaves
	for _, mode := range []struct{ name, ann string }{
		{"none", "@rewrite none."},
		{"magic", "@rewrite magic."},
		{"supmagic", ""},
	} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sys := benchSystem(b, facts+workload.TCModule(mode.ann))
				benchCall(b, sys, "tc", term.Int(int64(deepNode)), term.NewVar("Y"))
			}
		})
	}
}

func BenchmarkE04PipelineVsMaterialize(b *testing.B) {
	var src string
	k := 9
	for i := 0; i < k; i++ {
		base := 3 * i
		src += fmt.Sprintf("edge(%d, %d). edge(%d, %d). edge(%d, %d). edge(%d, %d).\n",
			base, base+1, base, base+2, base+1, base+3, base+2, base+3)
	}
	for _, mode := range []struct{ name, ann string }{
		{"pipelined", "@pipelining."},
		{"materialized", ""},
	} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sys := benchSystem(b, src+workload.TCModule(mode.ann))
				benchCall(b, sys, "tc", term.Int(0), term.Int(3*k))
			}
		})
	}
}

func BenchmarkE05ShortestPath(b *testing.B) {
	for _, V := range []int{24, 48} {
		facts := workload.WeightedGraph(V, 4*V, 10, int64(V))
		b.Run(fmt.Sprintf("V=%d", V), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sys := benchSystem(b, facts+workload.ShortestPathModule("@ordered_search."))
				benchCall(b, sys, "s_p", term.Int(0), term.NewVar("Y"), term.NewVar("P"), term.NewVar("C"))
			}
		})
	}
}

// BenchmarkE05Par compares sequential and parallel BSN rounds on the E05
// weighted-graph workload. The shortest-path program itself runs under
// Ordered Search — an inherently sequential control strategy — so the
// parallel arm evaluates the BSN-parallelizable reachability closure over
// the same graphs (workload.ReachModule). The par arm uses Parallelism=0
// (all of GOMAXPROCS): run with -cpu=4 to give the worker pool cores; on
// a single hardware thread the two arms measure the pool's overhead.
func BenchmarkE05Par(b *testing.B) {
	for _, V := range []int{96} {
		facts := workload.WeightedGraph(V, 4*V, 10, int64(V))
		for _, mode := range []struct {
			name string
			par  int
		}{
			{"seq", 1},
			{"par", 0},
		} {
			b.Run(fmt.Sprintf("V=%d/%s", V, mode.name), func(b *testing.B) {
				b.ReportAllocs()
				sys := benchSystem(b, facts+workload.ReachModule("@rewrite none."))
				sys.Parallelism = mode.par
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					benchCall(b, sys, "reach", term.NewVar("X"), term.NewVar("Y"))
				}
			})
		}
	}
}

// BenchmarkE18BudgetOverhead measures the cost of budget/cancellation
// checks on the E05 shortest-path workload: the off arm runs with the zero
// Budget (no guard installed, today's fast path), the on arm with limits
// high enough never to trip, so every amortized check in the join loop and
// every round-barrier check executes. The acceptance bar is <2% ns/op and
// an identical allocs/op count.
func BenchmarkE18BudgetOverhead(b *testing.B) {
	const V = 48
	facts := workload.WeightedGraph(V, 4*V, 10, int64(V))
	for _, mode := range []struct {
		name   string
		budget engine.Budget
	}{
		{"off", engine.Budget{}},
		{"on", engine.Budget{Timeout: time.Hour, MaxFacts: 1 << 40, MaxIterations: 1 << 30}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sys := benchSystem(b, facts+workload.ShortestPathModule("@ordered_search."))
				sys.Budget = mode.budget
				benchCall(b, sys, "s_p", term.Int(0), term.NewVar("Y"), term.NewVar("P"), term.NewVar("C"))
			}
		})
	}
}

func BenchmarkE06IndexVsScan(b *testing.B) {
	facts := workload.RandomGraph(150, 450, 11)
	for _, mode := range []struct{ name, ann string }{
		{"indexed", "@rewrite none."},
		{"scan", "@rewrite none.\n@no_indexing."},
	} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sys := benchSystem(b, facts+workload.TCModule(mode.ann))
				benchCall(b, sys, "tc", term.Int(0), term.NewVar("Y"))
			}
		})
	}
}

func BenchmarkE07PatternIndex(b *testing.B) {
	src := workload.Employees(4000, 50)
	query := func(i int) []term.Term {
		return []term.Term{
			term.Atom(fmt.Sprintf("name%d", i)),
			term.NewFunctor("addr", term.NewVar("S"), term.Atom(fmt.Sprintf("city%d", i%50))),
		}
	}
	run := func(b *testing.B, rel *relation.HashRelation) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			it := rel.Lookup(query(i%4000), nil)
			for {
				if _, ok := it.Next(); !ok {
					break
				}
			}
		}
	}
	b.Run("patternindex", func(b *testing.B) {
		b.ReportAllocs()
		sys := benchSystem(b, src)
		rel := benchBase(b, sys, "emp", 2)
		rel.MakePatternIndex([]term.Term{term.NewVar("Name"),
			term.NewFunctor("addr", term.NewVar("Street"), term.NewVar("City"))},
			[]string{"Name", "City"})
		run(b, rel)
	})
	b.Run("scan", func(b *testing.B) {
		b.ReportAllocs()
		sys := benchSystem(b, src)
		run(b, benchBase(b, sys, "emp", 2))
	})
}

func BenchmarkE08HashConsing(b *testing.B) {
	deep := workload.DeepTerm(14, 1)
	deep2 := workload.DeepTerm(14, 1)
	term.GroundID(deep.(*term.Functor))
	term.GroundID(deep2.(*term.Functor))
	var tr term.Trail
	b.Run("hashconsed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if !term.Unify(deep, nil, deep2, nil, &tr) {
				b.Fatal("unify failed")
			}
		}
	})
	b.Run("structural", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if !term.UnifyStructural(deep, nil, deep2, nil, &tr) {
				b.Fatal("unify failed")
			}
		}
	})
}

func BenchmarkE09SaveModule(b *testing.B) {
	facts := workload.Chain(80)
	for _, mode := range []struct{ name, ann string }{
		{"discard", ""},
		{"save", "@save_module."},
	} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			sys := benchSystem(b, facts+workload.TCModule(mode.ann))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				benchCall(b, sys, "tc", term.Int(0), term.NewVar("Y"))
			}
		})
	}
}

func BenchmarkE10OrderedSearch(b *testing.B) {
	moves := workload.WinGameMoves(60, 3, 4, 60)
	b.Run("orderedsearch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sys := benchSystem(b, moves+workload.WinModule("@ordered_search."))
			stats, err := sys.MeasureCall(ast.PredKey{Name: "win", Arity: 1}, []term.Term{term.Atom("p0")})
			if err != nil {
				b.Fatal(err)
			}
			_ = stats
		}
	})
	b.Run("pipelined", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sys := benchSystem(b, moves+workload.WinModule("@pipelining."))
			if _, err := sys.MeasureCall(ast.PredKey{Name: "win", Arity: 1}, []term.Term{term.Atom("p0")}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkE11Existential(b *testing.B) {
	facts := workload.RandomGraph(80, 400, 3)
	b.Run("observed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sys := benchSystem(b, facts+workload.TCModule(""))
			benchCall(b, sys, "tc", term.Int(0), term.NewVar("Y"))
		}
	})
	b.Run("existential", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sys := benchSystem(b, facts+workload.TCModule(""))
			benchCall(b, sys, "tc", term.Int(0), term.NewVar(""))
		}
	})
}

func BenchmarkE12LazyEval(b *testing.B) {
	facts := workload.Chain(200)
	for _, mode := range []struct{ name, ann string }{
		{"lazy", ""},
		{"eager", "@eager."},
	} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sys := benchSystem(b, facts+workload.TCModule(mode.ann))
				if _, err := sys.MeasureFirstAnswer(ast.PredKey{Name: "tc", Arity: 2},
					[]term.Term{term.Int(0), term.NewVar("Y")}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkE13Factoring(b *testing.B) {
	facts := workload.Grid(14, 14)
	for _, mode := range []struct{ name, ann string }{
		{"supmagic", ""},
		{"factoring", "@rewrite factoring."},
	} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sys := benchSystem(b, facts+workload.RightLinearTC(mode.ann))
				benchCall(b, sys, "tc", term.Int(0), term.NewVar("Y"))
			}
		})
	}
}

func BenchmarkE14Multiset(b *testing.B) {
	facts := workload.RandomGraph(50, 400, 5)
	mod := func(ann string) string {
		return "module j.\nexport hop2(ff).\n" + ann +
			"hop2(X, Z) :- edge(X, Y), edge(Y, Z).\nend_module.\n"
	}
	for _, mode := range []struct{ name, ann string }{
		{"set", ""},
		{"multiset", "@multiset hop2."},
	} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sys := benchSystem(b, facts+mod(mode.ann))
				benchCall(b, sys, "hop2", term.NewVar("X"), term.NewVar("Z"))
			}
		})
	}
}

func BenchmarkE15Persistent(b *testing.B) {
	for _, frames := range []int{8, 256} {
		b.Run(fmt.Sprintf("frames=%d", frames), func(b *testing.B) {
			b.ReportAllocs()
			db, err := storage.Open(filepath.Join(b.TempDir(), "bench.cdb"), frames)
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			rel, err := db.Relation("edge", 2)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < 8000; i++ {
				rel.Insert(relation.GroundFact(term.Int(int64(i)), term.Int(int64(i+1))))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				it := rel.Scan()
				for {
					if _, ok := it.Next(); !ok {
						break
					}
				}
			}
			b.ReportMetric(float64(db.Stats().PageReads)/float64(b.N), "pagereads/op")
		})
	}
}

func BenchmarkE16ConsultAndRun(b *testing.B) {
	src := workload.Chain(60) + workload.TCModule("")
	b.Run("consult", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			u, err := parser.Parse(src)
			if err != nil {
				b.Fatal(err)
			}
			sys := engine.NewSystem()
			for _, f := range u.Facts {
				benchBase(b, sys, f.Pred, len(f.Args)).Insert(relation.NewFact(f.Args, nil))
			}
			for _, m := range u.Modules {
				if err := sys.AddModule(m); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("evaluate", func(b *testing.B) {
		b.ReportAllocs()
		sys := benchSystem(b, src)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			benchCall(b, sys, "tc", term.Int(0), term.NewVar("Y"))
		}
	})
}

// BenchmarkE17JoinPlan measures the cost-based join planner (DESIGN.md
// §5.10) on a cross-product-prone 3-literal rule: the written order joins
// big1 × big2 (quadratic) before link constrains anything; the planned
// order drives the join through link (linear). "off" is the pre-planner
// written-order behavior, "on" the default.
func BenchmarkE17JoinPlan(b *testing.B) {
	var facts string
	n := 180
	for i := 0; i < n; i++ {
		facts += fmt.Sprintf("big1(a%d, b%d).\nbig2(c%d, v%d).\n", i, i, i, i%4)
	}
	for i := 0; i < n; i += 8 {
		facts += fmt.Sprintf("link(b%d, c%d).\n", i, i)
	}
	mod := `
module m.
export q(ff).
@rewrite none.
q(X, W) :- big1(X, Y), big2(Z, W), link(Y, Z).
end_module.
`
	for _, mode := range []struct {
		name     string
		planning bool
	}{
		{"off", false},
		{"on", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sys := benchSystem(b, facts+mod)
				sys.JoinPlanning = mode.planning
				benchCall(b, sys, "q", term.NewVar("X"), term.NewVar("W"))
			}
		})
	}
}

// --- Ablation benchmarks: the design choices DESIGN.md calls out ---

// Intelligent backtracking (paper §4.2): backjumping over positions that
// cannot fix a zero-solution failure.
func BenchmarkAblationBacktracking(b *testing.B) {
	facts := workload.RandomGraph(120, 240, 21) + "needle(119).\n"
	mod := func(ann string) string {
		return `
module m.
export q(ff).
` + ann + `
q(X, N) :- edge(X, Y), needle(N), edge(N, Z), edge(Z, W).
end_module.
`
	}
	for _, mode := range []struct{ name, ann string }{
		{"intelligent", ""},
		{"chronological", "@chronological_backtracking."},
	} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sys := benchSystem(b, facts+mod(mode.ann))
				if _, err := sys.MeasureCall(ast.PredKey{Name: "q", Arity: 2},
					[]term.Term{term.NewVar("X"), term.NewVar("N")}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Join order selection (paper §4.2): @reorder vs source order on a rule
// whose selective literals come last.
func BenchmarkAblationJoinOrder(b *testing.B) {
	facts := workload.RandomGraph(200, 1000, 31) + "pick(7).\n"
	mod := func(ann string) string {
		return `
module m.
export q(b).
` + ann + `
q(P) :- edge(X, Y), edge(Y, Z), pick(P), edge(P, X).
end_module.
`
	}
	for _, mode := range []struct{ name, ann string }{
		{"sourceorder", ""},
		{"reorder", "@reorder."},
	} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sys := benchSystem(b, facts+mod(mode.ann))
				if _, err := sys.MeasureCall(ast.PredKey{Name: "q", Arity: 1},
					[]term.Term{term.Int(7)}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Supplementary predicates (paper §4.1): plain magic recomputes rule-body
// prefixes per magic rule; supplementary magic shares them.
func BenchmarkAblationSupplementary(b *testing.B) {
	facts := workload.Grid(16, 16)
	for _, mode := range []struct{ name, ann string }{
		{"magic", "@rewrite magic."},
		{"supmagic", ""},
	} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sys := benchSystem(b, facts+workload.TCModule(mode.ann))
				benchCall(b, sys, "tc", term.Int(0), term.NewVar("Y"))
			}
		})
	}
}

// Subsumption checking (paper §4.2): insert-time duplicate detection cost
// on a duplicate-free workload (pure overhead measurement).
func BenchmarkAblationDuplicateCheck(b *testing.B) {
	n := 20000
	b.Run("set", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rel := relation.NewHashRelation("p", 2)
			for j := 0; j < n; j++ {
				rel.Insert(relation.GroundFact(term.Int(int64(j)), term.Int(int64(j+1))))
			}
		}
	})
	b.Run("multiset", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rel := relation.NewHashRelation("p", 2)
			rel.Multiset = true
			for j := 0; j < n; j++ {
				rel.Insert(relation.GroundFact(term.Int(int64(j)), term.Int(int64(j+1))))
			}
		}
	})
}

// BenchmarkE19FlowOptimization prices the whole-program flow analysis'
// optimizations on an all-free transitive closure (DESIGN.md §5.12): with
// the analysis on, every reachable context calls tc free-free, so magic
// rewriting is skipped and the pruned original rules evaluate directly;
// off reproduces the pre-analysis compilation (magic filter admitting
// everything). The module also carries a dead mutual-recursion cycle the
// analysis prunes.
func BenchmarkE19FlowOptimization(b *testing.B) {
	facts := workload.RandomGraph(96, 240, 1)
	mod := `
module m.
export tc(ff).
tc(X, Y) :- edge(X, Y).
tc(X, Y) :- tc(X, Z), edge(Z, Y).
dead(X, Y) :- deader(X, Y), tc(X, Y).
deader(X, Y) :- dead(X, Y).
end_module.
`
	u, err := parser.Parse(facts + mod)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name string
		flow bool
	}{
		{"off", false},
		{"on", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				// FlowOptimization must be set before AddModule: the
				// per-form programs are compiled and cached there.
				sys := engine.NewSystem()
				sys.FlowOptimization = mode.flow
				for _, f := range u.Facts {
					benchBase(b, sys, f.Pred, len(f.Args)).Insert(relation.NewFact(f.Args, nil))
				}
				for _, m := range u.Modules {
					if err := sys.AddModule(m); err != nil {
						b.Fatal(err)
					}
				}
				benchCall(b, sys, "tc", term.NewVar("X"), term.NewVar("Y"))
			}
		})
	}
}

// BenchmarkE20ColdStartPlan prices planner cold-start seeding (DESIGN.md
// §5.13) on a rule whose only selective literal is a module-call export:
// q joins two unrelated base relations with ok/2, a tiny export that
// keeps no live statistics. The cold planner without seeding prices ok/2
// at the unknown-source default (2^20 rows) and schedules it last — a
// big1 × big2 cross product probed through the module boundary. Seeding
// prices ok/2 from the callee's static estimate (an exact passthrough of
// linkbase/2, whose live count is known), so the very first plan drives
// the join from it.
func BenchmarkE20ColdStartPlan(b *testing.B) {
	var facts string
	n := 180
	for i := 0; i < n; i++ {
		facts += fmt.Sprintf("big1(a%d, b%d).\nbig2(c%d, v%d).\n", i, i, i, i%4)
	}
	for i := 0; i < n; i += 8 {
		facts += fmt.Sprintf("linkbase(b%d, c%d).\n", i, i)
	}
	mods := `
module tiny.
export ok(ff).
ok(Y, Z) :- linkbase(Y, Z).
end_module.
module outer.
export q(ff).
@rewrite none.
q(X, W) :- big1(X, Y), big2(Z, W), ok(Y, Z).
end_module.
`
	for _, mode := range []struct {
		name    string
		seeding bool
	}{
		{"unseeded", false},
		{"seeded", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sys := benchSystem(b, facts+mods)
				sys.StaticSeeding = mode.seeding
				benchCall(b, sys, "q", term.NewVar("X"), term.NewVar("W"))
			}
		})
	}
}

// BenchmarkE21HashJoin compares nested-loops and hash access paths on
// transitive closures dense enough for the planner to adopt the hash mark
// (the deterministic gate is engine.TestPlannerPicksHashJoin). The
// right-linear rule exercises the generic build/probe path through
// lookupFor — every delta tuple probes the full base relation; the
// doubly recursive rule routes through the symmetric delta fast path.
// @no_indexing isolates the comparison: without it the optimizer plants a
// persistent argIndex and both paths enumerate the same candidates.
func BenchmarkE21HashJoin(b *testing.B) {
	facts := workload.RandomGraph(48, 320, 11)
	linear := `
module m.
export tc(ff).
@rewrite none.
@no_indexing.
tc(X, Y) :- edge(X, Y).
tc(X, Y) :- tc(X, Z), edge(Z, Y).
end_module.
`
	sym := `
module m.
export p(ff).
@rewrite none.
@no_indexing.
p(X, Y) :- edge(X, Y).
p(X, Y) :- p(X, Z), p(Z, Y).
end_module.
`
	for _, w := range []struct {
		name, mod, pred string
	}{
		{"linear", linear, "tc"},
		{"sym", sym, "p"},
	} {
		for _, mode := range []struct {
			name string
			hash bool
		}{
			{"nestedloops", false},
			{"hash", true},
		} {
			b.Run(w.name+"/"+mode.name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					sys := benchSystem(b, facts+w.mod)
					sys.HashJoins = mode.hash
					benchCall(b, sys, w.pred, term.NewVar("X"), term.NewVar("Y"))
				}
			})
		}
	}
}

// BenchmarkE22Bytecode measures compiling rule bodies to
// adornment-specialized register bytecode (DESIGN.md §5.15) against the
// nested-loops interpreter, toggled per arm via System.Bytecode on
// otherwise identical systems — answers are byte-identical by
// construction (the differential suite in internal/engine pins it).
//
// reach is the E05 reachability closure: two-literal rules the streaming
// hash-join layer already handles, so the bytecode margin there is small
// and honest. spath is E05 shortest path under an aggregate selection.
// arith is the workload the machine exists for — a three-literal
// recursion with an arithmetic assignment and a bound comparison per
// candidate, where the interpreter walks terms, allocates environment
// bindings and re-classifies the expression for every tuple while the
// machine runs flat opcodes over unboxed integers.
func BenchmarkE22Bytecode(b *testing.B) {
	reachFacts := workload.WeightedGraph(48, 192, 10, 48)
	spathFacts := workload.WeightedGraph(24, 96, 10, 24)
	arithFacts := workload.WeightedGraph(32, 640, 10, 22)
	arith := `
module m.
export cost(fff).
@rewrite none.
cost(X, Y, C) :- edge(X, Y, W), C = W.
cost(X, Y, C) :- cost(X, Z, C1), edge(Z, Y, W), C = C1 + W, C < 16.
end_module.
`
	workloads := []struct {
		name, src, pred string
		args            []term.Term
	}{
		{"reach", reachFacts + workload.ReachModule(""), "reach",
			[]term.Term{term.NewVar("X"), term.NewVar("Y")}},
		{"spath", spathFacts + workload.ShortestPathModule("@ordered_search."), "s_p",
			[]term.Term{term.Int(0), term.NewVar("Y"), term.NewVar("P"), term.NewVar("C")}},
		{"arith", arithFacts + arith, "cost",
			[]term.Term{term.NewVar("X"), term.NewVar("Y"), term.NewVar("C")}},
	}
	for _, w := range workloads {
		for _, mode := range []struct {
			name string
			bc   bool
		}{
			{"interp", false},
			{"bytecode", true},
		} {
			b.Run(w.name+"/"+mode.name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					sys := benchSystem(b, w.src)
					sys.Bytecode = mode.bc
					benchCall(b, sys, w.pred, w.args...)
				}
			})
		}
	}
}
