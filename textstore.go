package coral

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"

	"coral/internal/term"
)

// Text-file persistence (paper §2: "Persistent data is stored either in
// text files, or using the EXODUS storage manager. Data stored in text
// files can be 'consulted', at which point the data is converted into
// main-memory relations"). WriteFacts/SaveRelation produce consultable
// fact files; ConsultFile loads them back.

// WriteFacts writes every fact of the relation as source-syntax facts, one
// per line, in a deterministic order. The output consults back into an
// identical relation.
func (r *Relation) WriteFacts(w io.Writer) error {
	var lines []string
	it := r.rel.Scan()
	for {
		f, ok := it.Next()
		if !ok {
			break
		}
		lines = append(lines, r.rel.Name()+factBody(f.Args)+".")
	}
	sort.Strings(lines)
	bw := bufio.NewWriter(w)
	for _, l := range lines {
		if _, err := bw.WriteString(l); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func factBody(args []term.Term) string {
	if len(args) == 0 {
		return ""
	}
	s := "("
	for i, a := range args {
		if i > 0 {
			s += ", "
		}
		s += a.String()
	}
	return s + ")"
}

// SaveRelation writes a base relation to a consultable text file.
func (s *System) SaveRelation(path, name string, arity int) error {
	rel, ok := s.LookupRelation(name, arity)
	if !ok {
		return fmt.Errorf("coral: unknown relation %s/%d", name, arity)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rel.WriteFacts(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
