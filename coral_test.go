package coral

import (
	"fmt"
	"math/big"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"coral/internal/term"
)

func answersOf(t *testing.T, sys *System, q string) []string {
	t.Helper()
	ans, err := sys.Query(q)
	if err != nil {
		t.Fatalf("Query(%q): %v", q, err)
	}
	var out []string
	for _, tup := range ans.Tuples {
		out = append(out, tup.String())
	}
	sort.Strings(out)
	return out
}

func TestQuickstartFlow(t *testing.T) {
	sys := New()
	_, err := sys.Consult(`
		edge(a, b). edge(b, c). edge(c, d).
		module paths.
		export path(bf, ff).
		path(X, Y) :- edge(X, Y).
		path(X, Y) :- edge(X, Z), path(Z, Y).
		end_module.
	`)
	if err != nil {
		t.Fatal(err)
	}
	got := answersOf(t, sys, "path(a, X)")
	want := []string{"(b)", "(c)", "(d)"}
	if strings.Join(got, ";") != strings.Join(want, ";") {
		t.Fatalf("path(a,X): %v", got)
	}
}

func TestConsultInlineQueries(t *testing.T) {
	sys := New()
	results, err := sys.Consult(`
		num(1). num(2).
		?- num(X).
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || len(results[0].Tuples) != 2 {
		t.Fatalf("inline query results: %+v", results)
	}
	if len(results[0].Vars) != 1 || results[0].Vars[0] != "X" {
		t.Errorf("vars: %v", results[0].Vars)
	}
}

func TestConsultFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "prog.crl")
	if err := writeFile(path, "f(1).\nf(2).\n"); err != nil {
		t.Fatal(err)
	}
	sys := New()
	if _, err := sys.ConsultFile(path); err != nil {
		t.Fatal(err)
	}
	if got := answersOf(t, sys, "f(X)"); len(got) != 2 {
		t.Errorf("facts: %v", got)
	}
	if _, err := sys.ConsultFile(filepath.Join(dir, "missing.crl")); err == nil {
		t.Error("missing file consulted")
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

func TestRelationAPI(t *testing.T) {
	sys := New()
	rel, err := sys.BaseRelation("emp", 2)
	if err != nil {
		t.Fatal(err)
	}
	if !rel.Insert(Atom("ann"), Func("addr", Atom("main"), Atom("madison"))) {
		t.Fatal("insert rejected")
	}
	if rel.Insert(Atom("ann"), Func("addr", Atom("main"), Atom("madison"))) {
		t.Fatal("duplicate accepted")
	}
	rel.Insert(Atom("bob"), Func("addr", Atom("oak"), Atom("nyc")))
	if rel.Len() != 2 || rel.Name() != "emp" || rel.Arity() != 2 {
		t.Fatalf("metadata: %d %s %d", rel.Len(), rel.Name(), rel.Arity())
	}
	if err := rel.MakePatternIndex("emp(Name, addr(Street, City))", "City"); err != nil {
		t.Fatal(err)
	}
	got, err := rel.Lookup(Var("N"), Func("addr", Var("S"), Atom("madison"))).All()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !Equal(got[0][0], Atom("ann")) {
		t.Fatalf("pattern lookup: %v", got)
	}
	n, err := rel.Delete(Atom("ann"), Wildcard())
	if err != nil || n != 1 {
		t.Fatalf("delete: %d %v", n, err)
	}
	all, _ := rel.Scan().All()
	if len(all) != 1 {
		t.Errorf("after delete: %v", all)
	}
}

func TestCallScan(t *testing.T) {
	sys := New()
	if _, err := sys.Consult(`
		edge(1, 2). edge(2, 3). edge(3, 4).
		module m.
		export reach(bf).
		reach(X, Y) :- edge(X, Y).
		reach(X, Y) :- edge(X, Z), reach(Z, Y).
		end_module.
	`); err != nil {
		t.Fatal(err)
	}
	scan, err := sys.Call("reach", Int(2), Var("Y"))
	if err != nil {
		t.Fatal(err)
	}
	rows, err := scan.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("call answers: %v", rows)
	}
	// Base relation calls work the same way.
	scan, err = sys.Call("edge", Var("X"), Var("Y"))
	if err != nil {
		t.Fatal(err)
	}
	rows, _ = scan.All()
	if len(rows) != 3 {
		t.Fatalf("base call: %v", rows)
	}
	if _, err := sys.Call("nosuch", Int(1)); err == nil {
		t.Error("unknown predicate call succeeded")
	}
}

func TestRegisterPredicate(t *testing.T) {
	sys := New()
	err := sys.RegisterPredicate("range", 2, func(pattern Tuple) ([]Tuple, error) {
		// range(N, X): X in 0..N-1; N must be bound to an integer.
		n, ok := pattern[0].(term.Int)
		if !ok {
			return nil, fmt.Errorf("range: first argument must be a bound integer, got %s", pattern[0])
		}
		out := make([]Tuple, 0, n)
		for x := term.Int(0); x < n; x++ {
			out = append(out, Tuple{n, x})
		}
		return out, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Consult(`
		module m.
		export squares(bf).
		squares(N, S) :- range(N, X), S = X * X.
		end_module.
	`); err != nil {
		t.Fatal(err)
	}
	got := answersOf(t, sys, "squares(4, S)")
	want := []string{"(0)", "(1)", "(4)", "(9)"}
	if strings.Join(got, ";") != strings.Join(want, ";") {
		t.Fatalf("squares: %v", got)
	}
}

func TestRewrittenProgramDump(t *testing.T) {
	sys := New()
	if _, err := sys.Consult(`
		module m.
		export p(bf).
		p(X, Y) :- e(X, Y).
		p(X, Y) :- e(X, Z), p(Z, Y).
		end_module.
	`); err != nil {
		t.Fatal(err)
	}
	text, err := sys.RewrittenProgram("m", "p", "bf")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "m_p_bf") {
		t.Errorf("dump missing magic predicate:\n%s", text)
	}
	if _, err := sys.RewrittenProgram("m", "p", "zz"); err == nil {
		t.Error("bogus form accepted")
	}
	if _, err := sys.RewrittenProgram("nomod", "p", "bf"); err == nil {
		t.Error("bogus module accepted")
	}
}

func TestPersistentFlow(t *testing.T) {
	sys := New()
	path := filepath.Join(t.TempDir(), "facts.cdb")
	if err := sys.AttachStorage(path, 64); err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	rel, err := sys.PersistentRelation("edge", 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		rel.Insert(Int(int64(i)), Int(int64(i+1)))
	}
	if err := sys.CreatePersistentIndex("edge", 2, 0); err != nil {
		t.Fatal(err)
	}
	// Declarative rules over the persistent relation.
	if _, err := sys.Consult(`
		module m.
		export hop2(bf).
		hop2(X, Z) :- edge(X, Y), edge(Y, Z).
		end_module.
	`); err != nil {
		t.Fatal(err)
	}
	got := answersOf(t, sys, "hop2(10, Z)")
	if len(got) != 1 || got[0] != "(12)" {
		t.Fatalf("hop2: %v", got)
	}
	db, ok := sys.Storage()
	if !ok {
		t.Fatal("storage not attached")
	}
	if db.Stats().Hits+db.Stats().Misses == 0 {
		t.Error("no buffer pool activity recorded")
	}
	// PersistentRelation on the same name returns a working handle.
	again, err := sys.PersistentRelation("edge", 2)
	if err != nil {
		t.Fatal(err)
	}
	if again.Len() != 50 {
		t.Errorf("reopened handle Len = %d", again.Len())
	}
}

func TestTermConstructors(t *testing.T) {
	l := List(Int(1), Atom("a"), Str("s"))
	if l.String() != `[1, a, "s"]` {
		t.Errorf("List: %v", l)
	}
	lt := ListTail(Var("T"), Int(1))
	if lt.String() != "[1|T]" {
		t.Errorf("ListTail: %v", lt)
	}
	f := Func("point", Int(1), Float(2.5))
	if f.String() != "point(1, 2.5)" {
		t.Errorf("Func: %v", f)
	}
	pt, err := ParseTerm("f(1, [a|T])")
	if err != nil || pt.String() != "f(1, [a|T])" {
		t.Errorf("ParseTerm: %v %v", pt, err)
	}
	if Compare(Int(1), Int(2)) >= 0 {
		t.Error("Compare wrong")
	}
	if !Equal(Atom("x"), Atom("x")) {
		t.Error("Equal wrong")
	}
	if (Tuple{Int(1), Atom("b")}).String() != "(1, b)" {
		t.Error("Tuple.String wrong")
	}
}

func TestQueryErrors(t *testing.T) {
	sys := New()
	if _, err := sys.Query("p(X"); err == nil {
		t.Error("syntax error accepted")
	}
	if _, err := sys.Consult("module m. p(X) :- q(X."); err == nil {
		t.Error("bad module accepted")
	}
}

func TestExplainAPI(t *testing.T) {
	sys := New()
	if _, err := sys.Consult(`
		edge(a, b). edge(b, c).
		module paths.
		export path(bf).
		path(X, Y) :- edge(X, Y).
		path(X, Y) :- edge(X, Z), path(Z, Y).
		end_module.
	`); err != nil {
		t.Fatal(err)
	}
	out, err := sys.Explain("path(a, c)")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "base fact") || !strings.Contains(out, "by rule") {
		t.Errorf("explanation:\n%s", out)
	}
	if _, err := sys.Explain("nosuch(a)"); err == nil {
		t.Error("unknown goal explained")
	}
	if _, err := sys.Explain("not a goal ("); err == nil {
		t.Error("garbage goal accepted")
	}
}

func TestTextFilePersistenceRoundTrip(t *testing.T) {
	sys := New()
	rel, err := sys.BaseRelation("emp", 2)
	if err != nil {
		t.Fatal(err)
	}
	rel.Insert(Atom("ann"), Func("addr", Atom("main"), Atom("madison")))
	rel.Insert(Atom("bob"), Int(42))
	rel.Insert(Str("weird name"), List(Int(1), Int(2)))
	rel.Insert(Var("X"), Atom("universal")) // non-ground fact survives

	path := filepath.Join(t.TempDir(), "emp.crl")
	if err := sys.SaveRelation(path, "emp", 2); err != nil {
		t.Fatal(err)
	}
	sys2 := New()
	if _, err := sys2.ConsultFile(path); err != nil {
		t.Fatal(err)
	}
	rel2, ok := sys2.LookupRelation("emp", 2)
	if !ok || rel2.Len() != rel.Len() {
		t.Fatalf("round trip: %v len %d vs %d", ok, rel2.Len(), rel.Len())
	}
	// Universal fact still answers arbitrary instances.
	ans, err := sys2.Query("emp(anything, universal)")
	if err != nil || len(ans.Tuples) != 1 {
		t.Fatalf("universal fact lost: %v %v", ans, err)
	}
	if err := sys.SaveRelation(path, "nosuch", 3); err == nil {
		t.Error("saving unknown relation succeeded")
	}
}

func TestTopLevelMakeIndexAnnotation(t *testing.T) {
	sys := New()
	if _, err := sys.Consult(`
		@make_index emp(Name, City) (City).
		emp(ann, madison). emp(bob, nyc). emp(cyd, madison).
		@make_index dept(D, addr(B, Floor)) (B, Floor).
		dept(eng, addr(hq, 3)).
	`); err != nil {
		t.Fatal(err)
	}
	ans, err := sys.Query("emp(N, madison)")
	if err != nil || len(ans.Tuples) != 2 {
		t.Fatalf("indexed base query: %v %v", ans, err)
	}
	ans, err = sys.Query("dept(D, addr(hq, 3))")
	if err != nil || len(ans.Tuples) != 1 {
		t.Fatalf("pattern-indexed base query: %v %v", ans, err)
	}
}

func TestCallPipelinedModule(t *testing.T) {
	sys := New()
	if _, err := sys.Consult(`
		edge(1, 2). edge(2, 3).
		module m.
		export r(bf).
		@pipelining.
		r(X, Y) :- edge(X, Y).
		r(X, Y) :- edge(X, Z), r(Z, Y).
		end_module.
	`); err != nil {
		t.Fatal(err)
	}
	scan, err := sys.Call("r", Int(1), Var("Y"))
	if err != nil {
		t.Fatal(err)
	}
	rows, err := scan.All()
	if err != nil || len(rows) != 2 {
		t.Fatalf("pipelined call: %v %v", rows, err)
	}
	// Next after exhaustion stays exhausted.
	if _, ok := scan.Next(); ok {
		t.Error("scan revived after exhaustion")
	}
}

func TestScanErrorSurfaces(t *testing.T) {
	sys := New()
	if err := sys.RegisterPredicate("boom", 1, func(Tuple) ([]Tuple, error) {
		return nil, fmt.Errorf("deliberate failure")
	}); err != nil {
		t.Fatal(err)
	}
	scan, err := sys.Call("boom", Var("X"))
	if err != nil {
		// Acceptable: the error may surface at call time.
		return
	}
	_, ok := scan.Next()
	if ok || scan.Err() == nil {
		t.Fatalf("computed-relation failure not surfaced: ok=%v err=%v", ok, scan.Err())
	}
	if !strings.Contains(scan.Err().Error(), "deliberate failure") {
		t.Errorf("error text: %v", scan.Err())
	}
}

func TestAttachStorageTwice(t *testing.T) {
	sys := New()
	path := filepath.Join(t.TempDir(), "a.cdb")
	if err := sys.AttachStorage(path, 16); err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if err := sys.AttachStorage(path, 16); err == nil {
		t.Error("double attach allowed")
	}
	if _, err := New().PersistentRelation("p", 1); err == nil {
		t.Error("persistent relation without storage allowed")
	}
}

func TestRegisterConflicts(t *testing.T) {
	sys := New()
	if _, err := sys.BaseRelation("p", 1); err != nil {
		t.Fatal(err)
	}
	if err := sys.RegisterPredicate("p", 1, func(Tuple) ([]Tuple, error) { return nil, nil }); err == nil {
		t.Error("registering over an existing base relation allowed")
	}
	if _, err := sys.Consult(`
		module m.
		export q(f).
		q(1).
		end_module.
	`); err != nil {
		t.Fatal(err)
	}
	if err := sys.RegisterPredicate("q", 1, func(Tuple) ([]Tuple, error) { return nil, nil }); err == nil {
		t.Error("registering over a module export allowed")
	}
}

// customRange is a custom RelationImpl used through the public API only.
type customRange struct{ n int64 }

func (r customRange) Name() string     { return "upto" }
func (r customRange) Arity() int       { return 1 }
func (r customRange) Len() int         { return int(r.n) }
func (r customRange) Insert(Fact) bool { panic("read-only") }
func (r customRange) Snapshot() Mark   { return 0 }
func (r customRange) Scan() Iterator {
	facts := make([]Fact, r.n)
	for i := range facts {
		facts[i] = NewFact([]Term{Int(int64(i))})
	}
	return SliceIterator(facts)
}
func (r customRange) Lookup(pattern []Term, env *Env) Iterator {
	// TermIn lets implementations read bound arguments.
	if v := TermIn(pattern[0], env); IsGroundTerm(v) {
		return SliceIterator([]Fact{NewFact([]Term{v})})
	}
	return r.Scan()
}
func (r customRange) ScanRange(from, to Mark) Iterator {
	if from == 0 {
		return r.Scan()
	}
	return EmptyIterator()
}
func (r customRange) LookupRange(p []Term, e *Env, from, to Mark) Iterator {
	if from == 0 {
		return r.Lookup(p, e)
	}
	return EmptyIterator()
}

func TestCustomRelationImplPublicAPI(t *testing.T) {
	var _ RelationImpl = customRange{}
	sys := New()
	if err := sys.Register(customRange{n: 4}); err != nil {
		t.Fatal(err)
	}
	if err := sys.Register(customRange{n: 4}); err == nil {
		t.Error("double register allowed")
	}
	ans, err := sys.Query("upto(X), X > 1")
	if err != nil || len(ans.Tuples) != 2 {
		t.Fatalf("custom relation query: %v %v", ans, err)
	}
	if sys.Engine() == nil {
		t.Error("Engine accessor nil")
	}
}

func TestBigIntConstructor(t *testing.T) {
	v, _ := new(big.Int).SetString("123456789012345678901234567890", 10)
	b := BigInt(v)
	sys := New()
	rel, err := sys.BaseRelation("huge", 1)
	if err != nil {
		t.Fatal(err)
	}
	rel.Insert(b)
	rows, err := rel.Scan().All()
	if err != nil || len(rows) != 1 || !Equal(rows[0][0], b) {
		t.Fatalf("bigint round trip: %v %v", rows, err)
	}
	ans, err := sys.Query("huge(X), X > 5")
	if err != nil || len(ans.Tuples) != 1 {
		t.Fatalf("bigint comparison: %v %v", ans, err)
	}
}

func TestRelationMakeIndexAPI(t *testing.T) {
	sys := New()
	rel, err := sys.BaseRelation("p", 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		rel.Insert(Int(int64(i)), Int(int64(i*2)))
	}
	if err := rel.MakeIndex(0); err != nil {
		t.Fatal(err)
	}
	rows, err := rel.Lookup(Int(42), Var("Y")).All()
	if err != nil || len(rows) != 1 || !Equal(rows[0][1], Int(84)) {
		t.Fatalf("indexed lookup: %v %v", rows, err)
	}
	// MakeIndex on a non-hash relation errors.
	sys.Register(customRange{n: 2})
	cr, _ := sys.LookupRelation("upto", 1)
	if err := cr.MakeIndex(0); err == nil {
		t.Error("MakeIndex on custom relation allowed")
	}
	if err := cr.MakePatternIndex("upto(X)", "X"); err == nil {
		t.Error("MakePatternIndex on custom relation allowed")
	}
	if _, err := cr.Delete(Int(0)); err == nil {
		t.Error("Delete on non-deleter allowed")
	}
}
