package coral

import (
	"context"

	"coral/internal/engine"
	"coral/internal/parser"
)

// Session is a connection-scoped, read-only window onto a System — the unit
// the coral server hands each client. A session carries its own evaluation
// budget, takes a per-query context (request cancellation aborts the
// running evaluation with an *AbortError), and optionally pins every base
// relation to a snapshot taken at session start, so all of its queries see
// one consistent database state however many append-only fact loads commit
// in between.
//
// Any number of sessions may query concurrently over one System. Sessions
// never write: consults, asserts and retracts go through the owning System,
// and the caller must fence those writes from in-flight session queries
// (the server's epoch guard does; see DESIGN.md §5.16). Configure a session
// (SetBudget) before issuing queries from multiple goroutines.
type Session struct {
	sys    *System
	snap   *engine.BaseSnapshot
	budget Budget
}

// RunStats reports what one evaluation did; see engine.RunStats.
type RunStats = engine.RunStats

// NewSession opens a live-reading session: queries see the current extent
// of every base relation at the time they run.
func (s *System) NewSession() *Session {
	return &Session{sys: s}
}

// SnapshotSession opens a snapshot-isolated session: every base relation is
// pinned to its extent right now, and all of the session's queries read
// that state. Must not run concurrently with a writer — capture it under
// the same exclusion a query needs (the server takes the epoch guard's read
// side).
func (s *System) SnapshotSession() *Session {
	return &Session{sys: s, snap: s.eng.SnapshotBases()}
}

// SetBudget bounds each subsequent query of this session independently of
// the owning System's budget. Deadlines anchor when each query starts.
func (se *Session) SetBudget(b Budget) { se.budget = b }

// Budget returns the session's evaluation budget.
func (se *Session) Budget() Budget { return se.budget }

// Snapshotted reports whether the session reads a pinned snapshot (false:
// live extents).
func (se *Session) Snapshotted() bool { return se.snap != nil }

// Valid reports whether the session's snapshot still is the consistent
// state it captured. Append-only loads never invalidate it; destructive
// changes (deletes, a rolled-back load) do, and the session's queries
// should be refused once they have. Live sessions are always valid.
func (se *Session) Valid() bool {
	return se.snap == nil || se.snap.Valid()
}

// Query parses and evaluates a conjunctive query through the session,
// materializing all answers. ctx cancellation (client disconnect, request
// deadline) aborts the evaluation with an *AbortError; nil is accepted and
// means no context. Answers.Stats reports what the evaluation did.
func (se *Session) Query(ctx context.Context, q string) (*Answers, error) {
	pq, err := parser.ParseQuery(q)
	if err != nil {
		return nil, err
	}
	v := se.sys.eng.NewView(se.snap)
	v.Ctx = ctx
	v.Budget = se.budget
	vars, facts, stats, err := v.Query(pq.Body)
	if err != nil {
		return nil, err
	}
	ans := &Answers{Query: q, Vars: vars, Stats: stats}
	for _, f := range facts {
		ans.Tuples = append(ans.Tuples, Tuple(f.Args))
	}
	return ans, nil
}
