package coral

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

// FuzzEval consults arbitrary program text on a System running under a
// tight Budget, once with the register bytecode machine on and once with
// it off. The contract under fuzz: evaluation either completes or aborts
// with a typed error — it never panics and never hangs, whatever the
// program does (unbounded recursion, negation, aggregate selections,
// arithmetic on garbage) — and when both settings complete cleanly their
// answers must agree byte for byte, in order: the machine mirrors the
// interpreter exactly, including error behavior. The budget is what turns
// "never hangs" into a testable property: an infinite fixpoint must trip
// MaxFacts, MaxIterations or the deadline.
func FuzzEval(f *testing.F) {
	seeds := []string{
		// Unbounded arithmetic recursion: must trip the budget.
		"module inf.\nexport num(f).\nnum(0).\nnum(X) :- num(Y), X = Y + 1.\nend_module.\n?- num(X).",
		// Terminating transitive closure with an inline query.
		"edge(a, b). edge(b, c). edge(c, a).\nmodule m.\nexport tc(ff).\ntc(X, Y) :- edge(X, Y).\ntc(X, Y) :- edge(X, Z), tc(Z, Y).\nend_module.\n?- tc(a, X).",
		// Stratified negation under Ordered Search.
		"move(a, b). move(b, c).\nmodule g.\nexport win(b).\n@ordered_search.\nwin(X) :- move(X, Y), not win(Y).\nend_module.\n?- win(a).",
		// Aggregate selection (shortest paths) with a cycle.
		"edge(a, b, 1). edge(b, c, 2). edge(c, a, 3).\nmodule sp.\nexport p(bfff).\n@aggregate_selection p(X, Y, P, C) (X, Y) min(C).\np(X, Y, [e(X, Y)], C) :- edge(X, Y, C).\np(X, Y, [e(Z, Y)|P], C1) :- p(X, Z, P, C), edge(Z, Y, EC), C1 = C + EC.\nend_module.\n?- p(a, Y, P, C).",
		// Pipelined evaluation.
		"e(1, 2). e(2, 3).\nmodule p.\nexport q(ff).\n@pipelining.\nq(X, Y) :- e(X, Y).\nq(X, Y) :- e(X, Z), q(Z, Y).\nend_module.\n?- q(1, X).",
		// Head aggregation and set grouping.
		"s(a, 1). s(a, 2). s(b, 3).\nmodule a.\nexport t(ff).\nt(X, sum(Y)) :- s(X, Y).\nend_module.\n?- t(X, S).",
		// Runtime type error paths.
		"v(a, x).\nmodule m.\nexport b(ff).\nb(X, Y) :- v(X, V), Y < V + 1.\nend_module.\n?- b(X, Y).",
		// Bytecode fragment boundaries: repeated variables (store vs.
		// compare), functor descent, and a structural "=" the compiler
		// must hand back to the interpreter.
		"e(f(a), f(a)). e(f(a), g(b)).\nmodule s.\nexport q(f).\nq(X) :- e(W, W), W = f(X).\nend_module.\n?- q(X).",
		// Negation with a partially built pattern argument.
		"n(a). n(b). e(a, b).\nmodule ng.\nexport r(f).\nr(X) :- n(X), not e(X, X).\nend_module.\n?- r(X).",
		// Integer overflow promotion inside the unboxed fast path.
		"big(4611686018427387904).\nmodule o.\nexport d(f).\nd(X) :- big(B), X = B * 3.\nend_module.\n?- d(X).",
		// Division by zero thrown from compiled arithmetic.
		"z(0).\nmodule dz.\nexport w(f).\nw(X) :- z(Z), X = 1 / Z.\nend_module.\n?- w(X).",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		var rendered [2]string
		var failed [2]bool
		for i, bc := range []bool{true, false} {
			sys := New()
			sys.SetBytecode(bc)
			sys.SetBudget(Budget{
				Timeout:       200 * time.Millisecond,
				MaxFacts:      5000,
				MaxIterations: 500,
			})
			start := time.Now()
			results, err := sys.Consult(src)
			if el := time.Since(start); el > 5*time.Second {
				t.Fatalf("bytecode=%v: consult ran %v under a 200ms budget", bc, el)
			}
			if err != nil {
				var ab *AbortError
				if errors.As(err, &ab) && ab.Tripped == "" {
					t.Fatalf("bytecode=%v: abort without a tripped reason: %v", bc, err)
				}
				// Budget trips depend on wall clock; error parity between
				// the settings is only checked for clean runs.
				failed[i] = true
				continue
			}
			rendered[i] = renderAnswerSets(results)
			// A clean consult leaves a usable system: follow-up query on a
			// trivial base relation must not be poisoned by prior evaluation.
			if _, err := sys.Consult("zfuzz(ok).\n?- zfuzz(X)."); err != nil {
				t.Fatalf("bytecode=%v: follow-up consult failed: %v", bc, err)
			}
		}
		if !failed[0] && !failed[1] && rendered[0] != rendered[1] {
			t.Fatalf("bytecode changed the answers\non:\n%s\noff:\n%s", rendered[0], rendered[1])
		}
	})
}

// renderAnswerSets flattens every query's answers — column names, tuples,
// and their order — into one string for the on/off cross-check.
func renderAnswerSets(results []*Answers) string {
	var b strings.Builder
	for _, ans := range results {
		fmt.Fprintf(&b, "?- %s | %v\n", ans.Query, ans.Vars)
		for _, tup := range ans.Tuples {
			fmt.Fprintf(&b, "%v\n", tup)
		}
	}
	return b.String()
}
