package coral

import (
	"strings"
	"testing"

	"coral/internal/analysis"
)

// TestVetKnownOracle: predicates resolvable in the running system —
// registered Go predicates, base relations, module exports — count as
// defined when vetting new program text.
func TestVetKnownOracle(t *testing.T) {
	sys := New()
	if err := sys.RegisterPredicate("cents", 2, func(Tuple) ([]Tuple, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}
	rel, err := sys.BaseRelation("price", 2)
	if err != nil {
		t.Fatal(err)
	}
	rel.Insert(Atom("coffee"), Int(450))

	src := `module totals.
export total(bf).
total(Item, C) :- price(Item, P), cents(P, C).
end_module.
`
	diags, err := sys.Vet(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("expected clean vet, got:\n%s", analysis.Render(diags))
	}

	// The same program against an empty system reports both predicates.
	diags, err = New().Vet(src)
	if err != nil {
		t.Fatal(err)
	}
	undef := 0
	for _, d := range diags {
		if d.Check == analysis.CheckUndefinedPred {
			undef++
		}
	}
	if undef != 2 {
		t.Fatalf("expected 2 undefined-pred diagnostics, got %d:\n%s", undef, analysis.Render(diags))
	}
}

// TestConsultRejectsUnsafeModule: the engine's pre-compile gate refuses a
// module whose analysis has errors, and the error carries the diagnostic.
func TestConsultRejectsUnsafeModule(t *testing.T) {
	sys := New()
	_, err := sys.Consult(`
module m.
export p(f).
p(X) :- d(X), not p(X).
end_module.
d(1).
`)
	if err == nil {
		t.Fatal("unstratified module was accepted")
	}
	if !strings.Contains(err.Error(), "unstratified") || !strings.Contains(err.Error(), "static analysis") {
		t.Fatalf("gate error lacks diagnostic text: %v", err)
	}
}
