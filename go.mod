module coral

go 1.22
