// Persistent relations: disk-resident data behind the same get-next-tuple
// interface as in-memory relations (paper §2, §3.2). Declarative rules
// read pages through the buffer pool; B+tree indexes serve selective
// lookups; transactions provide undo.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	coral "coral"
)

func main() {
	dir, err := os.MkdirTemp("", "coral-example-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "flights.cdb")

	sys := coral.New()
	if err := sys.AttachStorage(path, 64); err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	flights, err := sys.PersistentRelation("flight", 3)
	if err != nil {
		log.Fatal(err)
	}
	routes := [][3]any{
		{"msn", "ord", 130}, {"ord", "lga", 790}, {"ord", "sfo", 1850},
		{"lga", "bos", 190}, {"sfo", "sea", 680}, {"msn", "msp", 230},
		{"msp", "sea", 1400}, {"sea", "sfo", 680},
	}
	for _, r := range routes {
		flights.Insert(coral.Atom(r[0].(string)), coral.Atom(r[1].(string)), coral.Int(int64(r[2].(int))))
	}
	if err := sys.CreatePersistentIndex("flight", 3, 0); err != nil {
		log.Fatal(err)
	}

	// Rules over the persistent relation: every get-next-tuple request is
	// a page-level request against the buffer pool.
	if _, err := sys.Consult(`
		module trips.
		export reach(bf).
		reach(X, Y) :- flight(X, Y, _).
		reach(X, Y) :- flight(X, Z, _), reach(Z, Y).
		end_module.
	`); err != nil {
		log.Fatal(err)
	}
	ans, err := sys.Query("reach(msn, Y)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("airports reachable from msn (disk-resident base data):")
	for _, t := range ans.Tuples {
		fmt.Println("  ", t[0])
	}
	if db, ok := sys.Storage(); ok {
		st := db.Stats()
		fmt.Printf("buffer pool: %d hits, %d misses, %d page reads (hit ratio %.2f)\n",
			st.Hits, st.Misses, st.PageReads, st.HitRatio())
	}

	// Transactions: abort rolls pages and catalog back.
	db, _ := sys.Storage()
	txn, err := db.Begin()
	if err != nil {
		log.Fatal(err)
	}
	flights.Insert(coral.Atom("bos"), coral.Atom("msn"), coral.Int(999))
	fmt.Println("inside txn, flight count:", flights.Len())
	if err := txn.Abort(); err != nil {
		log.Fatal(err)
	}
	fresh, _ := sys.PersistentRelation("flight", 3)
	fmt.Println("after abort, flight count:", fresh.Len())
}
