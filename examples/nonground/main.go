// Non-ground facts and pattern-form indexes: CORAL differs from most
// deductive databases in storing facts with universally quantified
// variables (paper §3.1), and its pattern-form indexes key on positions
// inside complex terms (§3.3, §5.5.1).
package main

import (
	"fmt"
	"log"

	coral "coral"
)

func main() {
	sys := coral.New()

	// A policy table with universally quantified variables: the root may
	// access anything; auditors may read anything; alice may write her own
	// files. Variables in facts quantify universally.
	_, err := sys.Consult(`
		may(root, Action, Resource).
		may(auditor, read, Resource).
		may(alice, write, file(alice, Name)).
		may(bob, read, file(alice, report)).

		module authz.
		export allowed(bbb).
		allowed(U, A, R) :- may(U, A, R).
		end_module.
	`)
	if err != nil {
		log.Fatal(err)
	}
	checks := []string{
		"allowed(root, delete, anything)",
		"allowed(auditor, read, file(bob, notes))",
		"allowed(auditor, write, file(bob, notes))",
		"allowed(alice, write, file(alice, draft))",
		"allowed(alice, write, file(bob, draft))",
	}
	for _, q := range checks {
		ans, err := sys.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "denied"
		if len(ans.Tuples) > 0 {
			verdict = "allowed"
		}
		fmt.Printf("%-45s %s\n", q, verdict)
	}

	// Pattern-form index: retrieve employees by name and city without
	// knowing the street — the paper's own example.
	emp, err := sys.BaseRelation("emp", 2)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		emp.Insert(
			coral.Atom(fmt.Sprintf("name%d", i)),
			coral.Func("addr", coral.Atom(fmt.Sprintf("street%d", i)), coral.Atom(fmt.Sprintf("city%d", i%7))),
		)
	}
	if err := emp.MakePatternIndex("emp(Name, addr(Street, City))", "Name", "City"); err != nil {
		log.Fatal(err)
	}
	scan := emp.Lookup(coral.Atom("name4203"), coral.Func("addr", coral.Var("S"), coral.Atom("city3")))
	rows, err := scan.All()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pattern-form index lookup found %d employee(s): %v\n", len(rows), rows)
}
