// Bill of materials: a classic deductive-database workload combining
// recursion (transitive subparts), stratified aggregation (count and cost
// roll-ups), set-grouping, and negation (parts that are never subparts are
// top-level assemblies).
package main

import (
	"fmt"
	"log"

	coral "coral"
)

func main() {
	sys := coral.New()
	_, err := sys.Consult(`
		% assembly(Parent, Child, Quantity)
		assembly(bike, frame, 1).
		assembly(bike, wheel, 2).
		assembly(wheel, rim, 1).
		assembly(wheel, spoke, 36).
		assembly(wheel, hub, 1).
		assembly(frame, tube, 8).
		assembly(hub, axle, 1).
		assembly(hub, bearing, 2).

		% basecost(Part, UnitCost) for purchased parts
		basecost(rim, 40). basecost(spoke, 1). basecost(axle, 8).
		basecost(bearing, 5). basecost(tube, 12).

		module bom.
		export subpart(bf, ff).
		export leafcost(bff).
		export partstats(fff).
		export toplevel(f).
		export components(bf).

		% Transitive subparts.
		subpart(P, C) :- assembly(P, C, _).
		subpart(P, C) :- assembly(P, M, _), subpart(M, C).

		% Purchased descendants of a part, with their unit costs.
		leafcost(P, C, U) :- subpart(P, C), basecost(C, U).

		% Aggregates per part: how many distinct purchased components and
		% the sum of their unit costs (stratified aggregation: the rule's
		% body is complete before the aggregate is taken).
		partstats(P, count(C), sum(U)) :- leafcost(P, C, U).

		% Set-grouping: the distinct direct components of a part.
		components(P, <C>) :- assembly(P, C, _).

		% A part is top-level if nothing uses it (stratified negation).
		ispart(P) :- assembly(P, _, _).
		ispart(C) :- assembly(_, C, _).
		used(C) :- assembly(_, C, _).
		toplevel(P) :- ispart(P), not used(P).
		end_module.
	`)
	if err != nil {
		log.Fatal(err)
	}

	show := func(q string) {
		ans, err := sys.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("?- %s\n", q)
		for _, t := range ans.Tuples {
			fmt.Println("  ", t)
		}
	}
	show("toplevel(P)")
	show("components(bike, Cs)")
	show("subpart(wheel, C)")
	show("partstats(bike, NumKinds, UnitCostSum)")
	show("partstats(wheel, NumKinds, UnitCostSum)")
}
