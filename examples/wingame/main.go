// The win-move game: win(X) :- move(X, Y), not win(Y). The program is not
// stratified (win depends negatively on itself), but it is left-to-right
// modularly stratified on acyclic move graphs, which is exactly the class
// Ordered Search evaluates (paper §5.4.1): subgoals are sequenced by a
// context and a position's wins are decided only when its successors'
// answers are complete.
package main

import (
	"fmt"
	"log"

	coral "coral"
)

func main() {
	sys := coral.New()
	_, err := sys.Consult(`
		% A small game board (acyclic moves).
		move(a, b). move(a, c).
		move(b, d). move(c, d).
		move(d, e). move(d, f).
		move(e, g). move(f, g).

		module game.
		export win(b).
		@ordered_search.
		win(X) :- move(X, Y), not win(Y).
		end_module.
	`)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("position analysis (g has no moves, so g loses):")
	for _, pos := range []string{"a", "b", "c", "d", "e", "f", "g"} {
		ans, err := sys.Query(fmt.Sprintf("win(%s)", pos))
		if err != nil {
			log.Fatal(err)
		}
		verdict := "loses"
		if len(ans.Tuples) > 0 {
			verdict = "wins"
		}
		fmt.Printf("  %s %s\n", pos, verdict)
	}

	// The rewritten program shows the done_* guards Ordered Search uses.
	text, err := sys.RewrittenProgram("game", "win", "b")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nrewritten program with done guards:")
	fmt.Print(text)
}
