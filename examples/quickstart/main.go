// Quickstart: consult a declarative module, pose queries, and use the
// host-language relation API — the smallest end-to-end tour of the system.
package main

import (
	"fmt"
	"log"

	coral "coral"
)

func main() {
	sys := coral.New()

	// Declarative part: facts plus a module computing reachability. The
	// export declares the query forms the optimizer specializes for:
	// path(bf) propagates a bound first argument via Supplementary Magic
	// Templates (the default rewriting); path(ff) computes the full
	// closure.
	_, err := sys.Consult(`
		edge(a, b). edge(b, c). edge(c, d). edge(b, e).

		module paths.
		export path(bf, ff).
		path(X, Y) :- edge(X, Y).
		path(X, Y) :- edge(X, Z), path(Z, Y).
		end_module.
	`)
	if err != nil {
		log.Fatal(err)
	}

	// Query through the string interface.
	ans, err := sys.Query("path(a, X)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("nodes reachable from a:")
	for _, t := range ans.Tuples {
		fmt.Println("  ", t)
	}

	// Imperative part: insert a fact through the relation API and watch
	// the declarative view update (the paper's C++-interface usage mode).
	edges, err := sys.BaseRelation("edge", 2)
	if err != nil {
		log.Fatal(err)
	}
	edges.Insert(coral.Atom("d"), coral.Atom("z"))
	ans, _ = sys.Query("path(a, z)")
	fmt.Printf("a reaches z after inserting edge(d, z): %v\n", len(ans.Tuples) == 1)

	// Stream answers through a get-next-tuple scan (C_ScanDesc, §6.1).
	scan, err := sys.Call("path", coral.Atom("b"), coral.Var("Y"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("streamed from path(b, Y):")
	for {
		t, ok := scan.Next()
		if !ok {
			break
		}
		fmt.Println("  ", t[1])
	}

	// The optimizer's rewritten program is inspectable (paper §2).
	text, _ := sys.RewrittenProgram("paths", "path", "bf")
	fmt.Println("rewritten program for path(bf):")
	fmt.Print(text)
}
