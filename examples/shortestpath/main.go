// Shortest paths — the paper's Figure 3 program, verbatim semantics: the
// aggregate selection keeps only minimal-cost path facts (without it the
// program would generate ever-longer cyclic paths forever), and the
// any-choice keeps one witness path per (source, target, cost). Evaluated
// with Ordered Search so the aggregation inside the magic-rewritten
// program is sequenced by subgoal completion (paper §5.4.1, §5.5.2).
package main

import (
	"fmt"
	"log"

	coral "coral"
)

func main() {
	sys := coral.New()
	_, err := sys.Consult(`
		% A weighted road network with a cycle.
		edge(madison, chicago, 3).
		edge(chicago, detroit, 5).
		edge(madison, minneapolis, 4).
		edge(minneapolis, chicago, 6).
		edge(chicago, stlouis, 5).
		edge(stlouis, madison, 6).
		edge(detroit, chicago, 5).
		edge(madison, stlouis, 11).

		module sp.
		export s_p(bfff).
		@ordered_search.
		@aggregate_selection p(X, Y, P, C) (X, Y) min(C).
		@aggregate_selection p(X, Y, P, C) (X, Y, C) any(P).
		s_p(X, Y, P, C)        :- s_p_length(X, Y, C), p(X, Y, P, C).
		s_p_length(X, Y, min(C)) :- p(X, Y, _, C).
		p(X, Y, P1, C1) :- p(X, Z, P, C), edge(Z, Y, EC),
		                   P1 = [e(Z, Y)|P], C1 = C + EC.
		p(X, Y, [e(X, Y)], C) :- edge(X, Y, C).
		end_module.
	`)
	if err != nil {
		log.Fatal(err)
	}

	ans, err := sys.Query("s_p(madison, Y, Path, Cost)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("single-source shortest paths from madison:")
	for _, t := range ans.Tuples {
		fmt.Printf("  to %-12s cost %-3s via %s\n", t[0], t[2], t[1])
	}
}
