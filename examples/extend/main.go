// Extensibility (paper §7): a user-defined abstract data type (Money), a
// Go-defined predicate (§6.2), and a custom read-only relation
// implementation (§7.2) — all plugged in without touching system code,
// then queried declaratively alongside ordinary facts.
package main

import (
	"fmt"
	"log"

	coral "coral"
)

// Money is an abstract data type: cents-precise currency. It implements
// coral.External — the equals/hash/print interface the paper requires of
// every ADT — and flows through unification and aggregation unchanged.
type Money struct{ Cents int64 }

func (Money) Kind() coral.Kind       { return coral.KindExternal }
func (m Money) String() string       { return fmt.Sprintf("$%d.%02d", m.Cents/100, m.Cents%100) }
func (Money) TypeName() string       { return "money" }
func (m Money) HashExternal() uint64 { return uint64(m.Cents) }
func (m Money) EqualExternal(o coral.External) bool {
	q, ok := o.(Money)
	return ok && m == q
}

// rangeRelation is a custom relation implementation: the integers
// [0, n) materialized nowhere, generated on demand — a tiny example of the
// paper's "new relation implementations" (§7.2).
type rangeRelation struct{ n int64 }

func (r rangeRelation) Name() string { return "upto" }
func (r rangeRelation) Arity() int   { return 1 }
func (r rangeRelation) Len() int     { return int(r.n) }
func (r rangeRelation) Insert(coral.Fact) bool {
	panic("upto is read-only")
}
func (r rangeRelation) Scan() coral.Iterator {
	facts := make([]coral.Fact, r.n)
	for i := range facts {
		facts[i] = coral.NewFact([]coral.Term{coral.Int(int64(i))})
	}
	return coral.SliceIterator(facts)
}
func (r rangeRelation) Lookup(pattern []coral.Term, env *coral.Env) coral.Iterator {
	return r.Scan()
}
func (r rangeRelation) Snapshot() coral.Mark { return 0 }
func (r rangeRelation) ScanRange(from, to coral.Mark) coral.Iterator {
	if from == 0 {
		return r.Scan()
	}
	return coral.EmptyIterator()
}
func (r rangeRelation) LookupRange(pattern []coral.Term, env *coral.Env, from, to coral.Mark) coral.Iterator {
	return r.ScanRange(from, to)
}

var _ coral.RelationImpl = rangeRelation{}

func main() {
	sys := coral.New()

	// Install the custom relation implementation.
	if err := sys.Register(rangeRelation{n: 5}); err != nil {
		log.Fatal(err)
	}

	// Facts carrying the ADT, inserted through the relation API.
	prices, err := sys.BaseRelation("price", 2)
	if err != nil {
		log.Fatal(err)
	}
	prices.Insert(coral.Atom("coffee"), Money{450})
	prices.Insert(coral.Atom("bagel"), Money{325})
	prices.Insert(coral.Atom("espresso"), Money{450})

	// A Go-defined predicate converting the ADT to cents for arithmetic.
	if err := sys.RegisterPredicate("cents", 2, func(pattern coral.Tuple) ([]coral.Tuple, error) {
		m, ok := pattern[0].(Money)
		if !ok {
			return nil, fmt.Errorf("cents: first argument must be money, got %s", pattern[0])
		}
		return []coral.Tuple{{m, coral.Int(m.Cents)}}, nil
	}); err != nil {
		log.Fatal(err)
	}

	if _, err := sys.Consult(`
		module menu.
		export same_price(ff).
		export affordable(bf).
		same_price(A, B) :- price(A, P), price(B, P), A != B.
		affordable(Limit, Item) :- price(Item, P), cents(P, C), C =< Limit.
		end_module.
	`); err != nil {
		log.Fatal(err)
	}

	ans, _ := sys.Query("same_price(A, B)")
	fmt.Println("items priced identically (ADT equality through unification):")
	for _, t := range ans.Tuples {
		fmt.Println("  ", t)
	}
	ans, _ = sys.Query("affordable(400, I)")
	fmt.Println("items at or under $4.00:")
	for _, t := range ans.Tuples {
		fmt.Println("  ", t)
	}

	// The custom relation implementation answers queries like any other.
	ans, _ = sys.Query("upto(X), X > 2")
	fmt.Println("custom relation upto/1, values above 2:")
	for _, t := range ans.Tuples {
		fmt.Println("  ", t)
	}
}
