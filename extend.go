package coral

import (
	"coral/internal/relation"
	"coral/internal/term"
)

// Extensibility (paper §7): new abstract data types, new relation
// implementations and new index methods plug in behind fixed interfaces,
// without changes to the evaluation system. The interfaces live in
// internal packages; these aliases are the supported public names.

// External is the interface user-defined abstract data types implement
// (paper §7.1) — the required "virtual methods" are equality, hashing and
// printing; construction belongs to the type itself. Values flow through
// unification, relations, aggregation and printing unchanged:
//
//	type Money struct{ Cents int64 }
//
//	func (Money) Kind() coral.Kind           { return coral.KindExternal }
//	func (m Money) String() string           { return fmt.Sprintf("$%d.%02d", m.Cents/100, m.Cents%100) }
//	func (Money) TypeName() string           { return "money" }
//	func (m Money) HashExternal() uint64     { return uint64(m.Cents) }
//	func (m Money) EqualExternal(o coral.External) bool {
//		q, ok := o.(Money)
//		return ok && m == q
//	}
type External = term.External

// Kind discriminates term representations; user types return KindExternal.
type Kind = term.Kind

// KindExternal is the Kind of every user-defined abstract data type.
const KindExternal = term.KindExternal

// RelationImpl is the interface a new relation (or index) implementation
// satisfies (paper §7.2); install one with System.Register. The
// get-next-tuple iterator contract is all the evaluation system relies on.
type RelationImpl = relation.Relation

// Fact is one stored tuple: environment-free canonical arguments plus the
// count of distinct variables (non-ground facts are universally
// quantified, paper §3.1).
type Fact = relation.Fact

// Iterator is the get-next-tuple interface (paper §2).
type Iterator = relation.Iterator

// Env is a binding environment (paper §3.1, Figure 2); RelationImpl
// lookups receive the caller's environment so bound pattern arguments can
// be dereferenced with TermIn.
type Env = term.Env

// TermIn dereferences t under env, resolving it to an environment-free
// term (unbound variables stay variables). RelationImpl implementations
// use it to read bound pattern arguments.
func TermIn(t Term, env *Env) Term {
	out, _ := term.ResolveArgs([]term.Term{t}, env)
	return out[0]
}

// Mark is a point in a relation's insertion history (paper §3.2); the
// engine scans [from, to) ranges of marks for semi-naive deltas.
type Mark = relation.Mark

// NewFact canonicalizes arguments into a Fact (for RelationImpl
// implementations).
func NewFact(args []Term) Fact { return relation.NewFact(args, nil) }

// SliceIterator wraps materialized facts as an Iterator.
func SliceIterator(facts []Fact) Iterator { return relation.SliceIterator(facts) }

// EmptyIterator returns an iterator with no facts.
func EmptyIterator() Iterator { return relation.EmptyIterator() }
