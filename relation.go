package coral

import (
	"fmt"

	"coral/internal/ast"
	"coral/internal/parser"
	"coral/internal/relation"
	"coral/internal/term"
)

// Relation is a handle on a base relation: the class Relation of the
// paper's C++ interface (§6.1), supporting explicit inserts and deletes,
// scans, and index creation, without breaking the relation abstraction.
type Relation struct {
	rel relation.Relation
}

// BaseRelation returns (creating if needed) the in-memory base relation
// name/arity. It errors when the name is already bound to a relation of a
// different representation (computed, persistent, list).
func (s *System) BaseRelation(name string, arity int) (*Relation, error) {
	hr, err := s.eng.BaseRelation(name, arity)
	if err != nil {
		return nil, err
	}
	return &Relation{rel: hr}, nil
}

// LookupRelation finds an existing relation of any representation.
func (s *System) LookupRelation(name string, arity int) (*Relation, bool) {
	r, ok := s.eng.Relation(ast.PredKey{Name: name, Arity: arity})
	if !ok {
		return nil, false
	}
	return &Relation{rel: r}, true
}

// Register installs a custom relation implementation (a new relation or
// index representation per the paper's extensibility story, §7.2) as a
// base relation.
func (s *System) Register(rel relation.Relation) error {
	return s.eng.RegisterRelation(rel)
}

// Name returns the relation's predicate name.
func (r *Relation) Name() string { return r.rel.Name() }

// Arity returns the relation's arity.
func (r *Relation) Arity() int { return r.rel.Arity() }

// Len returns the number of live facts.
func (r *Relation) Len() int { return r.rel.Len() }

// Insert adds a fact; it reports whether the fact was new. Arguments may
// contain variables — CORAL facts are universally quantified over them
// (paper §3.1).
func (r *Relation) Insert(args ...Term) bool {
	return r.rel.Insert(relation.NewFact(args, nil))
}

// Delete removes all facts unifying with the given pattern, returning how
// many were removed.
func (r *Relation) Delete(args ...Term) (int, error) {
	d, ok := r.rel.(relation.Deleter)
	if !ok {
		return 0, fmt.Errorf("coral: relation %s does not support deletion", r.rel.Name())
	}
	return d.Delete(args, nil), nil
}

// Scan opens a cursor over all facts.
func (r *Relation) Scan() *Scan { return newScan(r.rel.Scan(), nil, nil) }

// Lookup opens a cursor over facts unifying with the pattern, using the
// best available index (paper §3.3).
func (r *Relation) Lookup(args ...Term) *Scan {
	resolved, n := term.ResolveArgs(args, nil)
	env := term.NewEnv(n)
	return newScan(r.rel.Lookup(resolved, env), resolved, env)
}

// MakeIndex creates an argument-form hash index on the given positions
// (paper §3.3); in-memory relations only.
func (r *Relation) MakeIndex(positions ...int) error {
	hr, ok := r.rel.(*relation.HashRelation)
	if !ok {
		return fmt.Errorf("coral: %s is not an in-memory hash relation", r.rel.Name())
	}
	return hr.MakeIndex(positions...)
}

// MakePatternIndex creates a pattern-form index (paper §3.3, §5.5.1). The
// pattern is source syntax, e.g. "emp(Name, addr(Street, City))", and keys
// name the pattern variables forming the index key.
func (r *Relation) MakePatternIndex(pattern string, keys ...string) error {
	hr, ok := r.rel.(*relation.HashRelation)
	if !ok {
		return fmt.Errorf("coral: %s is not an in-memory hash relation", r.rel.Name())
	}
	t, err := parser.ParseTerm(pattern)
	if err != nil {
		return err
	}
	f, ok := t.(*term.Functor)
	if !ok || f.Sym != r.rel.Name() || len(f.Args) != r.rel.Arity() {
		return fmt.Errorf("coral: pattern %q does not match %s/%d", pattern, r.rel.Name(), r.rel.Arity())
	}
	return hr.MakePatternIndex(f.Args, keys)
}
