// Package coral is a Go reproduction of the CORAL deductive database
// system (Ramakrishnan, Srivastava, Sudarshan, Seshadri — SIGMOD 1993): a
// declarative query language with modules, Horn rules with complex terms
// and non-ground facts, negation, aggregation and set-grouping, evaluated
// by a suite of cooperating strategies — Supplementary Magic Templates with
// Basic or Predicate Semi-Naive fixpoints, Ordered Search for modularly
// stratified programs, pipelined top-down evaluation, context factoring,
// existential query rewriting, save-module state retention, and lazy answer
// return — over in-memory or disk-resident relations.
//
// This package is the host-language interface the paper provides for C++
// (§6): relations, tuples, scans (C_ScanDesc), embedded command execution,
// and host-defined predicates, expressed as Go values. The declarative
// language itself is consulted as text:
//
//	sys := coral.New()
//	err := sys.Consult(`
//	    edge(a, b). edge(b, c).
//	    module paths.
//	    export path(bf, ff).
//	    path(X, Y) :- edge(X, Y).
//	    path(X, Y) :- edge(X, Z), path(Z, Y).
//	    end_module.
//	`)
//	ans, err := sys.Query("path(a, X)")
//	for _, t := range ans.Tuples { fmt.Println(t) }
package coral

import (
	"context"
	"fmt"
	"os"

	"coral/internal/ast"
	"coral/internal/engine"
	"coral/internal/parser"
	"coral/internal/relation"
	"coral/internal/storage"
	"coral/internal/term"
)

// System is one CORAL instance: base relations, installed modules, and
// optionally an attached persistent store.
type System struct {
	eng *engine.System
	db  *storage.DB
}

// New creates an empty system.
func New() *System {
	return &System{eng: engine.NewSystem()}
}

// SetParallelism bounds the number of worker goroutines a materialized
// fixpoint round may use. The default (0) uses every available core; 1
// forces sequential evaluation. Evaluations that are inherently sequential
// — Ordered Search, tracing, aggregate selections, pipelined modules,
// module-call or computed body sources — are unaffected. Parallel and
// sequential evaluation produce identical answers in identical order.
func (s *System) SetParallelism(n int) { s.eng.Parallelism = n }

// SetJoinPlanning toggles the cost-based join planner (on by default): per
// rule version the engine reorders body literals greedily by estimated
// intermediate size, using live relation statistics, while builtins and
// negation stay at the earliest position where their arguments are bound.
// Off, every rule body is evaluated in its written order — today's
// pre-planner behavior, byte for byte. Planner on and off produce the same
// answer sets; the enumeration order of answers may differ.
func (s *System) SetJoinPlanning(on bool) { s.eng.JoinPlanning = on }

// SetHashJoins toggles hash-join access paths (on by default): when the
// join planner estimates that a body literal will be probed many times, the
// literal's scan range is loaded once into a transient hash table pre-sized
// from live statistics and every probe becomes a bucket lookup, replacing
// per-probe index searches; two-literal recursive rules additionally take a
// symmetric fast path whose semi-naive delta versions probe build tables
// over each other's ranges. The classic build/probe form requires
// SetJoinPlanning on (the planner places the marks). On and off produce
// identical answer sets in identical order.
func (s *System) SetHashJoins(on bool) { s.eng.HashJoins = on }

// SetFlowOptimization toggles the flow-analysis-driven optimizations (on
// by default): rules unreachable from the query form are pruned before
// compilation, magic rewriting is skipped when every reachable context
// calls with all arguments free (the magic filter would admit everything),
// and the join planner seeds rule bodies at their magic literal. On and
// off produce the same answer sets; off reproduces the pre-analysis
// compilation byte for byte.
func (s *System) SetFlowOptimization(on bool) { s.eng.FlowOptimization = on }

// SetStaticSeeding toggles planner cold-start seeding from the
// compile-time cardinality analysis (on by default): body sources without
// live statistics — derived relations before their first fixpoint round,
// module-call and computed sources — are priced from static row and
// domain bounds instead of blind defaults, and iteration-budget aborts
// report the statically proven round bound ("statically expected ≤ N
// rounds"). Live statistics take over as relations fill. On and off
// produce the same answer sets; the enumeration order of answers may
// differ.
func (s *System) SetStaticSeeding(on bool) { s.eng.StaticSeeding = on }

// SetBytecode toggles register-bytecode execution of rule bodies (on by
// default): eligible rule versions are compiled once per (rule, adornment)
// to flat opcode streams — constant tests, register stores and compares,
// functor descents, unboxed arithmetic — and the join loop runs those
// instead of interpreting rule structures per candidate tuple. Rules
// outside the compiled fragment, traced evaluations, and Ordered Search
// always use the interpreter. On and off produce identical answers, byte
// for byte, in identical order.
func (s *System) SetBytecode(on bool) { s.eng.Bytecode = on }

// Budget bounds one evaluation: wall-clock deadline, derived-fact count,
// and fixpoint iterations. The zero value means unlimited. See SetBudget.
type Budget = engine.Budget

// AbortError reports an evaluation stopped by a Budget or a canceled
// context: which limit tripped, and the statistics accumulated up to the
// abort. Unwrap yields context.Canceled or context.DeadlineExceeded where
// applicable, so errors.Is works as usual.
type AbortError = engine.AbortError

// SetBudget bounds every subsequent evaluation (queries, inline consult
// queries, pipelined scans). Deadlines anchor when each evaluation starts,
// not when SetBudget is called. A tripped budget surfaces as *AbortError;
// the System stays consistent and answers follow-up queries correctly.
// Pass the zero Budget to remove limits.
func (s *System) SetBudget(b Budget) { s.eng.Budget = b }

// Budget returns the currently configured evaluation budget.
func (s *System) Budget() Budget { return s.eng.Budget }

// WithContext attaches ctx to every subsequent evaluation: cancellation is
// observed at fixpoint round barriers and amortized inside join scans, and
// surfaces as *AbortError wrapping ctx.Err(). Pass nil to detach.
func (s *System) WithContext(ctx context.Context) { s.eng.Ctx = ctx }

// Consult loads a program text: base facts outside modules are inserted
// into base relations, modules are optimized and installed for their
// declared query forms, @make_index annotations are applied, and inline
// queries ("?- p(X).") are evaluated with their results returned in order.
func (s *System) Consult(src string) ([]*Answers, error) {
	u, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	for _, f := range u.Facts {
		rel, err := s.eng.BaseRelation(f.Pred, len(f.Args))
		if err != nil {
			return nil, err
		}
		rel.Insert(relation.NewFact(f.Args, nil))
	}
	for _, ix := range u.Indexes {
		if err := s.applyIndex(ix); err != nil {
			return nil, err
		}
	}
	for _, m := range u.Modules {
		if err := s.eng.AddModule(m); err != nil {
			return nil, err
		}
	}
	var results []*Answers
	for _, q := range u.Queries {
		ans, err := s.runQuery(q)
		if err != nil {
			return results, err
		}
		results = append(results, ans)
	}
	return results, nil
}

// ConsultFile consults a program file (the interactive system's "consult",
// paper §2).
func (s *System) ConsultFile(path string) ([]*Answers, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	results, err := s.Consult(string(src))
	if err != nil {
		return results, fmt.Errorf("%s: %w", path, err)
	}
	return results, nil
}

func (s *System) applyIndex(ix ast.IndexAnn) error {
	rel, err := s.eng.BaseRelation(ix.Pred, len(ix.Pattern))
	if err != nil {
		return err
	}
	if pos, ok := argFormIndex(ix); ok {
		return rel.MakeIndex(pos...)
	}
	return rel.MakePatternIndex(ix.Pattern, ix.KeyVars)
}

func argFormIndex(ix ast.IndexAnn) ([]int, bool) {
	byName := map[string]int{}
	for i, t := range ix.Pattern {
		v, ok := t.(*term.Var)
		if !ok {
			return nil, false
		}
		if _, dup := byName[v.Name]; dup {
			return nil, false
		}
		byName[v.Name] = i
	}
	var pos []int
	for _, k := range ix.KeyVars {
		i, ok := byName[k]
		if !ok {
			return nil, false
		}
		pos = append(pos, i)
	}
	return pos, true
}

// Answers holds a query's results: the named variables of the query and
// one tuple of bindings per answer.
type Answers struct {
	// Query is the source text of the query.
	Query string
	// Vars names the answer columns.
	Vars []string
	// Tuples are the answers, one binding list per answer.
	Tuples []Tuple
	// Stats reports what the evaluation did (filled by Session.Query;
	// zero for queries evaluated directly on the System).
	Stats RunStats
}

// Query parses and evaluates a conjunctive query against base relations
// and exported module predicates, materializing all answers.
func (s *System) Query(q string) (*Answers, error) {
	pq, err := parser.ParseQuery(q)
	if err != nil {
		return nil, err
	}
	ans, err := s.runQuery(pq)
	if err != nil {
		return nil, err
	}
	ans.Query = q
	return ans, nil
}

func (s *System) runQuery(q ast.Query) (*Answers, error) {
	vars, facts, err := s.eng.Query(q.Body)
	if err != nil {
		return nil, err
	}
	ans := &Answers{Query: q.String(), Vars: vars}
	for _, f := range facts {
		ans.Tuples = append(ans.Tuples, Tuple(f.Args))
	}
	return ans, nil
}

// Call opens a get-next-tuple scan on an exported predicate or base
// relation — the inter-module interface of paper §5.6 exposed to the host
// language. Unbound arguments are passed as Var terms (or NewVar("_")).
// Answers stream lazily: for materialized modules, at the end of each
// fixpoint iteration (paper §5.4.3); for pipelined modules, one at a time.
func (s *System) Call(pred string, args ...Term) (scan *Scan, err error) {
	defer func() {
		if r := recover(); r != nil {
			scan, err = nil, fmt.Errorf("coral: %v", r)
		}
	}()
	key := ast.PredKey{Name: pred, Arity: len(args)}
	resolved, n := term.ResolveArgs(args, nil)
	env := term.NewEnv(n)
	if def, ok := s.eng.Export(key); ok {
		it, err := def.Call(key, resolved, env)
		if err != nil {
			return nil, err
		}
		return newScan(it, resolved, env), nil
	}
	if rel, ok := s.eng.Relation(key); ok {
		return newScan(rel.Lookup(resolved, env), resolved, env), nil
	}
	return nil, fmt.Errorf("coral: unknown predicate %s", key)
}

// RegisterPredicate defines a predicate computed by a Go function — the
// paper's C++-defined predicates (§6.2). fn receives the call pattern
// (bound arguments are concrete terms, unbound ones are variables) and
// returns the matching tuples; returning a superset is allowed, the engine
// unifies. fn must be deterministic for a given pattern.
func (s *System) RegisterPredicate(name string, arity int, fn func(pattern Tuple) ([]Tuple, error)) error {
	gen := func(pattern []term.Term, env *term.Env) relation.Iterator {
		snap, _ := term.ResolveArgs(pattern, env)
		rows, err := fn(Tuple(snap))
		if err != nil {
			engine.Throw(fmt.Errorf("predicate %s: %w", name, err))
		}
		facts := make([]relation.Fact, 0, len(rows))
		for _, row := range rows {
			facts = append(facts, relation.NewFact(row, nil))
		}
		return relation.SliceIterator(facts)
	}
	return s.eng.RegisterRelation(relation.NewComputed(name, arity, gen))
}

// RewrittenProgram returns the optimizer's rewritten program text for a
// module's query form — the debugging artifact the paper stores in a file
// (§2). form is an adornment such as "bf".
func (s *System) RewrittenProgram(module, pred, form string) (string, error) {
	def, ok := s.eng.Module(module)
	if !ok {
		return "", fmt.Errorf("coral: unknown module %s", module)
	}
	prog, ok := def.Programs()[pred+"/"+form]
	if !ok {
		return "", fmt.Errorf("coral: module %s has no program for %s/%s", module, pred, form)
	}
	return prog.RewrittenText, nil
}

// Explain evaluates a single-literal query with derivation tracing and
// returns a proof tree for every answer — the reproduction's version of
// CORAL's Explanation tool. The predicate must be exported by a
// materialized module. The goal is source syntax, e.g. "path(a, X)".
func (s *System) Explain(goal string) (string, error) {
	t, err := parser.ParseTerm(goal)
	if err != nil {
		return "", err
	}
	f, ok := t.(*term.Functor)
	if !ok {
		return "", fmt.Errorf("coral: Explain expects a goal literal, got %s", goal)
	}
	key := ast.PredKey{Name: f.Sym, Arity: len(f.Args)}
	def, ok := s.eng.Export(key)
	if !ok {
		return "", fmt.Errorf("coral: no module exports %s", key)
	}
	resolved, _ := term.ResolveArgs(f.Args, nil)
	return def.ExplainCall(key, resolved)
}

// ParseUnit parses program text without loading it (the interactive
// interface uses it to classify inputs).
func (s *System) ParseUnit(src string) (*ast.Unit, error) { return parser.Parse(src) }

// IsExported reports whether a predicate is exported by an installed
// module (and therefore cannot be asserted into as a base relation).
func (s *System) IsExported(pred string, arity int) bool {
	_, ok := s.eng.Export(ast.PredKey{Name: pred, Arity: arity})
	return ok
}

// IsGroundTerm reports whether t contains no variables.
func IsGroundTerm(t Term) bool { return term.IsGround(t) }

// Engine exposes the underlying engine system for advanced embedding
// (benchmarks and tests use it; the stable surface is the System API).
func (s *System) Engine() *engine.System { return s.eng }
