package coral

import (
	"fmt"

	"coral/internal/storage"
)

// Persistent storage: the paper stores persistent relations through the
// EXODUS storage manager (§2, §3.2); this reproduction's substitute is the
// internal storage package — slotted pages, a buffer pool, B+tree indexes
// and undo-log transactions. Persistent relations answer the same
// get-next-tuple interface as in-memory ones, so declarative rules read
// them transparently; tuples are restricted to primitive types, as the
// paper states for EXODUS-resident data.

// AttachStorage opens (creating if needed) a database file and attaches it
// to the system. frames sizes the buffer pool in 8 KiB pages.
func (s *System) AttachStorage(path string, frames int) error {
	if s.db != nil {
		return fmt.Errorf("coral: storage already attached")
	}
	db, err := storage.Open(path, frames)
	if err != nil {
		return err
	}
	s.db = db
	return nil
}

// Storage returns the attached database, if any.
func (s *System) Storage() (*storage.DB, bool) { return s.db, s.db != nil }

// PersistentRelation opens (creating if needed) a disk-resident relation
// and registers it so declarative rules can read it. Rules accessing it
// perform page-level I/O through the buffer pool, exactly the paper's
// description of get-next-tuple on persistent data (§2).
func (s *System) PersistentRelation(name string, arity int) (*Relation, error) {
	if s.db == nil {
		return nil, fmt.Errorf("coral: no storage attached (call AttachStorage first)")
	}
	prel, err := s.db.Relation(name, arity)
	if err != nil {
		return nil, err
	}
	if err := s.eng.RegisterRelation(prel); err != nil {
		// Already registered on a previous call: return the handle.
		if existing, ok := s.LookupRelation(name, arity); ok {
			return existing, nil
		}
		return nil, err
	}
	return &Relation{rel: prel}, nil
}

// CreatePersistentIndex adds a B+tree index on the named persistent
// relation's columns (paper §3.3).
func (s *System) CreatePersistentIndex(name string, arity int, cols ...int) error {
	if s.db == nil {
		return fmt.Errorf("coral: no storage attached")
	}
	prel, err := s.db.Relation(name, arity)
	if err != nil {
		return err
	}
	return prel.CreateIndex(cols...)
}

// Close flushes and closes the attached storage, if any.
func (s *System) Close() error {
	if s.db == nil {
		return nil
	}
	err := s.db.Close()
	s.db = nil
	return err
}
